// Package mat implements the dense linear-algebra kernel used by every
// algorithm in this repository: a row-major dense matrix type with the
// standard arithmetic, and the factorizations Tucker methods rely on
// (Householder QR, partially pivoted LU, cyclic Jacobi symmetric
// eigendecomposition, and a QR-preconditioned one-sided Jacobi SVD).
//
// The package uses float64 throughout and depends only on the standard
// library. Dimension mismatches are programmer errors and panic with a
// descriptive message, mirroring the convention of mainstream Go numeric
// libraries; conditions that depend on the data (singular systems,
// non-convergence) are reported as errors.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix; use New or the other constructors
// to obtain a usable matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps data (row-major, length r*c) in a Dense without copying.
// The caller must not alias data afterwards unless it intends the matrix to
// observe the writes.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// FromRows builds a matrix from a slice of equally sized rows, copying the
// values.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row 0 has %d entries, row %d has %d", c, i, len(row)))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns the matrix dimensions (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %d×%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range for %d×%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Data returns the matrix's backing slice (row-major). Mutating it mutates
// the matrix.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: copy dimension mismatch %d×%d ← %d×%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets every element to 0, preserving the shape.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Slice returns a copy of the sub-matrix with rows [r0,r1) and columns
// [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: slice [%d:%d,%d:%d] out of range for %d×%d matrix", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d for %d×%d matrix", len(v), m.rows, m.cols))
	}
	copy(m.Row(i), v)
}

// SetCol copies v into column j.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d for %d×%d matrix", len(v), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Add returns m + b as a new matrix.
func (m *Dense) Add(b *Dense) *Dense {
	m.checkSameShape(b, "Add")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m − b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	m.checkSameShape(b, "Sub")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// AddInPlace accumulates b into m.
func (m *Dense) AddInPlace(b *Dense) {
	m.checkSameShape(b, "AddInPlace")
	for i, v := range b.data {
		m.data[i] += v
	}
}

// AddScaledInPlace accumulates alpha*b into m.
func (m *Dense) AddScaledInPlace(alpha float64, b *Dense) {
	m.checkSameShape(b, "AddScaledInPlace")
	for i, v := range b.data {
		m.data[i] += alpha * v
	}
}

// Scale returns alpha*m as a new matrix.
func (m *Dense) Scale(alpha float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// ScaleInPlace multiplies every element by alpha.
func (m *Dense) ScaleInPlace(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

func (m *Dense) checkSameShape(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Norm returns the Frobenius norm of the matrix.
func (m *Dense) Norm() float64 {
	// Scaled accumulation to avoid overflow/underflow on extreme values.
	scale, ssq := 0.0, 1.0
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	best := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// IsFinite reports whether every element is finite (no NaN, no ±Inf).
func (m *Dense) IsFinite() bool {
	for _, v := range m.data {
		// v != v catches NaN; IsInf catches both infinities.
		if v != v || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: Trace of non-square %d×%d matrix", m.rows, m.cols))
	}
	t := 0.0
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// EqualApprox reports whether m and b have the same shape and all elements
// within tol of each other.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense %d×%d", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return sb.String()
	}
	for i := 0; i < m.rows; i++ {
		sb.WriteString("\n  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&sb, "% .5g ", m.data[i*m.cols+j])
		}
	}
	return sb.String()
}

// Dot returns the inner product of two equally long vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of a vector, guarding against overflow.
func Nrm2(a []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range a {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x element-wise.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
