package mat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pool"
)

// withBlockSizes runs fn under the given process-wide block setting and
// restores the previous one.
func withBlockSizes(t *testing.T, kc, nc int, fn func()) {
	t.Helper()
	prevK, prevN := SetBlockSizes(kc, nc)
	defer SetBlockSizes(prevK, prevN)
	fn()
}

func sameBits(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			g, w := got.At(i, j), want.At(i, j)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: element (%d,%d) = %v, want %v (bit mismatch)", name, i, j, g, w)
			}
		}
	}
}

// TestBlockedMulAddBitIdenticalToPlain checks the core contract of the
// blocked kernel: for every block size — including ones that force the
// packed-panel path — the result is bit-for-bit identical to the plain
// streaming kernel, for any worker count.
func TestBlockedMulAddBitIdenticalToPlain(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{7, 13, 5},
		{33, 40, 65},  // k and n just past a tiny block
		{64, 100, 96}, // multiple tiles in both dimensions
		{3, 129, 200}, // few rows: packing disabled by minPackRows
		{20, 64, 300}, // packing engaged (rows ≥ minPackRows, n > nc)
	}
	blocks := []struct{ kc, nc int }{{8, 8}, {16, 32}, {32, 64}, {128, 512}, {1024, 1024}}
	rng := rand.New(rand.NewSource(7))
	for _, sh := range shapes {
		a := RandN(sh.m, sh.k, rng)
		// Sprinkle zeros so the zero-skip branch is exercised too.
		for i := 0; i < sh.m; i++ {
			a.Set(i, i%sh.k, 0)
		}
		b := RandN(sh.k, sh.n, rng)
		want := New(sh.m, sh.n)
		mulAddRowsPlain(want, a, b, 0, sh.m)
		for _, bl := range blocks {
			withBlockSizes(t, bl.kc, bl.nc, func() {
				for _, workers := range []int{1, 4} {
					p := pool.New(workers)
					got := New(sh.m, sh.n)
					MulAddIntoP(got, a, b, p)
					sameBits(t, "blocked", got, want)
				}
			})
		}
	}
}

// TestBlockedMulAddAccumulates checks the kernel adds into dst rather than
// overwriting it, same as the plain path.
func TestBlockedMulAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandN(12, 40, rng)
	b := RandN(40, 72, rng)
	withBlockSizes(t, 16, 32, func() {
		got := New(12, 72)
		for i := 0; i < got.Rows(); i++ {
			for j := 0; j < got.Cols(); j++ {
				got.Set(i, j, 1)
			}
		}
		MulAddInto(got, a, b)
		want := New(12, 72)
		for i := 0; i < want.Rows(); i++ {
			for j := 0; j < want.Cols(); j++ {
				want.Set(i, j, 1)
			}
		}
		mulAddRowsPlain(want, a, b, 0, 12)
		sameBits(t, "accumulate", got, want)
	})
}

func TestSetBlockSizesClamps(t *testing.T) {
	prevK, prevN := SetBlockSizes(1, 1<<20)
	defer SetBlockSizes(prevK, prevN)
	kc, nc := BlockSizes()
	if kc != minBlockDim || nc != maxBlockDim {
		t.Fatalf("BlockSizes() = %d,%d after out-of-range set, want %d,%d", kc, nc, minBlockDim, maxBlockDim)
	}
}

// TestEffectiveWorkersOverflow is the regression test for the
// rows·flopsPerRow overflow: a huge-but-legitimate workload must keep the
// full pool instead of collapsing to a negative (then zero/one) count.
func TestEffectiveWorkersOverflow(t *testing.T) {
	cases := []struct {
		size, rows, flopsPerRow int
		want                    int
	}{
		{8, math.MaxInt / 2, 8, 8},               // product overflows → saturate at pool size
		{8, math.MaxInt, math.MaxInt, 8},         // extreme overflow
		{8, 2, 1 << 15, 1},                       // tiny work still serializes
		{8, 1 << 10, 1 << 10, 8},                 // comfortably parallel, no overflow
		{4, (1 << 16) * 3, 1, 3},                 // partial clamp below pool size
		{6, 1, math.MaxInt, 1},                   // a single row can never be split
		{8, math.MaxInt/8 + 1, 8, 8},             // just past the overflow boundary
		{8, math.MaxInt / 8, 8, 8},               // just inside: exact division, no overflow
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.size, c.rows, c.flopsPerRow); got != c.want {
			t.Errorf("effectiveWorkers(%d, %d, %d) = %d, want %d", c.size, c.rows, c.flopsPerRow, got, c.want)
		}
	}
}

func BenchmarkMulAddIntoBlocked(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const dim = 512
	a := RandN(dim, dim, rng)
	bb := RandN(dim, dim, rng)
	dst := New(dim, dim)
	for _, bl := range []struct {
		name   string
		kc, nc int
	}{
		{"plain", 1024, 1024}, // inputs fit one tile → plain path
		{"blocked128x512", 128, 512},
	} {
		b.Run(bl.name, func(b *testing.B) {
			prevK, prevN := SetBlockSizes(bl.kc, bl.nc)
			defer SetBlockSizes(prevK, prevN)
			b.SetBytes(3 * dim * dim * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.Zero()
				MulAddInto(dst, a, bb)
			}
		})
	}
}
