package mat

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// TestKernelsZeroAllocWithMetricsDisabled asserts the instrumented multiply
// kernel stays allocation-free on the hot path when the counters are off
// (the default): the counting hook must cost one atomic load and nothing
// else.
func TestKernelsZeroAllocWithMetricsDisabled(t *testing.T) {
	prev := metrics.SetEnabled(false)
	defer metrics.SetEnabled(prev)

	rng := rand.New(rand.NewSource(1))
	a := RandN(32, 32, rng)
	b := RandN(32, 32, rng)
	dst := New(32, 32)
	allocs := testing.AllocsPerRun(200, func() {
		MulAddInto(dst, a, b)
	})
	if allocs != 0 {
		t.Fatalf("MulAddInto allocated %v times per run with metrics disabled", allocs)
	}
}

// TestKernelCountersRecord checks each instrumented kernel records exactly
// one call with the documented flop estimate.
func TestKernelCountersRecord(t *testing.T) {
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)

	rng := rand.New(rand.NewSource(2))
	a := RandN(12, 8, rng)
	b := RandN(8, 6, rng)

	before := metrics.Snapshot()
	Mul(a, b)
	d := metrics.Snapshot().Sub(before)
	if d.MatmulCalls != 1 || d.MatmulFlops != 2*12*8*6 {
		t.Errorf("Mul delta: %+v", d)
	}

	before = metrics.Snapshot()
	Gram(a)
	d = metrics.Snapshot().Sub(before)
	if d.MatmulCalls != 1 || d.MatmulFlops != 12*8*8 {
		t.Errorf("Gram delta: %+v", d)
	}

	before = metrics.Snapshot()
	QR(a)
	d = metrics.Snapshot().Sub(before)
	if d.QRCalls != 1 || d.QRFlops == 0 {
		t.Errorf("QR delta: %+v", d)
	}

	before = metrics.Snapshot()
	if _, err := SVD(a); err != nil {
		t.Fatal(err)
	}
	d = metrics.Snapshot().Sub(before)
	if d.SVDCalls != 1 {
		t.Errorf("SVD delta: %+v", d)
	}

	// A wide input routes through the transposed recursion; it must still
	// count as a single SVD.
	before = metrics.Snapshot()
	if _, err := SVD(b.T()); err != nil {
		t.Fatal(err)
	}
	d = metrics.Snapshot().Sub(before)
	if d.SVDCalls != 1 {
		t.Errorf("wide SVD counted %d calls", d.SVDCalls)
	}
}
