package mat

import (
	"math"
	"math/rand"
	"testing"
)

// hilbert returns the n×n Hilbert matrix, the classic ill-conditioned test
// case (condition number grows like e^{3.5n}).
func hilbert(n int) *Dense {
	h := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	return h
}

func TestSVDHilbertReconstruction(t *testing.T) {
	// Even at condition number ~1e13 the one-sided Jacobi SVD should
	// reconstruct to near machine precision (its high-relative-accuracy
	// property).
	h := hilbert(10)
	res, err := SVD(h)
	if err != nil {
		t.Fatal(err)
	}
	sig := New(10, 10)
	for i, v := range res.S {
		sig.Set(i, i, v)
	}
	rebuilt := Mul(Mul(res.U, sig), res.V.T())
	if !rebuilt.EqualApprox(h, 1e-13) {
		t.Fatal("Hilbert SVD reconstruction above 1e-13")
	}
	// Known: Hilbert singular values decay fast; σ₁ ≈ 1.75, σ₁₀ ≈ 1e-13.
	if math.Abs(res.S[0]-1.7519) > 1e-3 {
		t.Fatalf("σ₁ = %g, want ≈1.7519", res.S[0])
	}
	if res.S[9] > 1e-11 {
		t.Fatalf("σ₁₀ = %g, want tiny", res.S[9])
	}
}

func TestSVDScalingEquivariance(t *testing.T) {
	// SVD(αA) has singular values α·σ and the same subspaces.
	rng := rand.New(rand.NewSource(1))
	a := RandN(8, 6, rng)
	r1, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SVD(a.Scale(1e-150))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.S {
		if r1.S[i] == 0 {
			continue
		}
		ratio := r2.S[i] / r1.S[i]
		if math.Abs(ratio-1e-150) > 1e-160 {
			t.Fatalf("σ%d scaled by %g, want 1e-150", i, ratio)
		}
	}
}

func TestSVDHugeValuesNoOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(6, 5, rng).Scale(1e150)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.S {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("overflowed singular value %g", v)
		}
	}
}

func TestQRIllConditioned(t *testing.T) {
	h := hilbert(12)
	res := QR(h)
	if !Mul(res.Q, res.R).EqualApprox(h, 1e-13) {
		t.Fatal("QR of Hilbert matrix does not reconstruct")
	}
	if !Gram(res.Q).EqualApprox(Identity(12), 1e-12) {
		t.Fatal("Q loses orthogonality on ill-conditioned input")
	}
}

func TestSymEigClusteredEigenvalues(t *testing.T) {
	// A matrix with a tight eigenvalue cluster: Jacobi must still produce
	// an orthonormal basis whose reconstruction is accurate.
	rng := rand.New(rand.NewSource(3))
	q := RandOrthonormal(8, 8, rng)
	lam := []float64{5, 1 + 1e-10, 1, 1 - 1e-10, 0.5, 0.1, 1e-8, 0}
	d := New(8, 8)
	for i, v := range lam {
		d.Set(i, i, v)
	}
	a := Mul(Mul(q, d), q.T())
	res, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Gram(res.Vectors).EqualApprox(Identity(8), 1e-10) {
		t.Fatal("eigenvectors lose orthogonality in a cluster")
	}
	for i, want := range lam {
		if math.Abs(res.Values[i]-want) > 1e-9 {
			t.Fatalf("λ%d = %g, want %g", i, res.Values[i], want)
		}
	}
}

func TestLUNearSingularStillSolves(t *testing.T) {
	// κ ≈ 1e12 system: the solution should still carry several digits.
	n := 8
	h := hilbert(n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = float64(i + 1)
	}
	b := MulVec(h, xTrue)
	f, err := LU(h)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify via residual (forward error is hopeless at this κ).
	r := MulVec(h, x)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-10 {
			t.Fatalf("residual %g at %d", r[i]-b[i], i)
		}
	}
}

func TestCompleteOrthonormalColumnAllPositions(t *testing.T) {
	// Fill every column of an orthonormal set one at a time: each
	// completion must stay orthonormal.
	rng := rand.New(rand.NewSource(4))
	u := RandOrthonormal(7, 4, rng)
	ext := New(7, 6)
	for i := 0; i < 7; i++ {
		copy(ext.Row(i)[:4], u.Row(i))
	}
	completeOrthonormalColumn(ext, 4)
	completeOrthonormalColumn(ext, 5)
	if !Gram(ext).EqualApprox(Identity(6), 1e-10) {
		t.Fatal("completed columns not orthonormal")
	}
}

func TestLeadingLeftDegenerateSpectrum(t *testing.T) {
	// All-equal singular values: any orthonormal basis is valid; ensure no
	// panic and orthonormal output.
	u, err := LeadingLeft(Identity(6), 3, LeadingAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !Gram(u).EqualApprox(Identity(3), 1e-10) {
		t.Fatal("degenerate LeadingLeft not orthonormal")
	}
}

func TestSVDOneByOne(t *testing.T) {
	a := FromRows([][]float64{{-3}})
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0]-3) > 1e-15 {
		t.Fatalf("σ = %v", res.S)
	}
	if math.Abs(math.Abs(res.U.At(0, 0))-1) > 1e-15 || math.Abs(math.Abs(res.V.At(0, 0))-1) > 1e-15 {
		t.Fatal("1×1 factors not unit")
	}
}

func TestGramHugeValues(t *testing.T) {
	a := FromRows([][]float64{{1e160}, {1e160}})
	g := Gram(a)
	if math.IsInf(g.At(0, 0), 0) {
		t.Skip("Gram of 1e160 overflows by construction; Norm-based paths handle this")
	}
}

func TestCholeskyIdentity(t *testing.T) {
	l, err := Cholesky(Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if !l.EqualApprox(Identity(5), 1e-15) {
		t.Fatal("Cholesky(I) != I")
	}
}

func TestInverseOrthogonalIsTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := RandOrthonormal(6, 6, rng)
	inv, err := Inverse(q)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.EqualApprox(q.T(), 1e-11) {
		t.Fatal("inverse of orthogonal matrix is not its transpose")
	}
}
