package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigResult holds the eigendecomposition of a symmetric matrix:
// A = V·diag(Values)·Vᵀ with orthonormal V and eigenvalues sorted in
// descending order.
type EigResult struct {
	Values  []float64
	Vectors *Dense // column k is the eigenvector for Values[k]
}

// SymEig computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi rotation method. Only the upper triangle of a is read.
//
// Jacobi is quadratically convergent once off-diagonal mass is small and is
// unconditionally stable, which suits the small Gram matrices (rank-sized)
// this repository produces; an error is returned only if the sweep limit is
// exceeded, which indicates non-symmetric or non-finite input.
func SymEig(a *Dense) (EigResult, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: SymEig of non-square %d×%d matrix", a.rows, a.cols))
	}
	// Work on a symmetric copy built from the upper triangle.
	w := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := a.data[i*n+j]
			w.data[i*n+j] = v
			w.data[j*n+i] = v
		}
	}
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.data[i*n+j] * w.data[i*n+j]
			}
		}
		if math.Sqrt(2*off) <= 1e-14*(1+w.Norm()) {
			return sortedEig(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				// Skip negligible rotations to preserve convergence speed.
				if math.Abs(apq) <= 1e-16*(math.Abs(app)+math.Abs(aqq)) {
					w.data[p*n+q] = 0
					w.data[q*n+p] = 0
					continue
				}
				// Stable rotation angle computation.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation A ← JᵀAJ on rows/cols p and q.
				for k := 0; k < n; k++ {
					akp := w.data[k*n+p]
					akq := w.data[k*n+q]
					w.data[k*n+p] = c*akp - s*akq
					w.data[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := w.data[p*n+k]
					aqk := w.data[q*n+k]
					w.data[p*n+k] = c*apk - s*aqk
					w.data[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.data[k*n+p]
					vkq := v.data[k*n+q]
					v.data[k*n+p] = c*vkp - s*vkq
					v.data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	return EigResult{}, fmt.Errorf("mat: SymEig did not converge in %d sweeps (non-finite or non-symmetric input?)", 64)
}

func sortedEig(w, v *Dense) EigResult {
	n := w.rows
	vals := make([]float64, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		vals[i] = w.data[i*n+i]
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	sortedVals := make([]float64, n)
	vec := New(n, n)
	for k, src := range idx {
		sortedVals[k] = vals[src]
		for i := 0; i < n; i++ {
			vec.data[i*n+k] = v.data[i*n+src]
		}
	}
	return EigResult{Values: sortedVals, Vectors: vec}
}
