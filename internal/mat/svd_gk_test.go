package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkSVD(t *testing.T, a *Dense, res SVDResult, tol float64, label string) {
	t.Helper()
	k := len(res.S)
	sig := New(k, k)
	for i, v := range res.S {
		sig.Set(i, i, v)
	}
	rebuilt := Mul(Mul(res.U, sig), res.V.T())
	if !rebuilt.EqualApprox(a, tol*(1+a.Norm())) {
		t.Fatalf("%s: reconstruction failed", label)
	}
	if !isOrthonormalCols(res.U, tol) || !isOrthonormalCols(res.V, tol) {
		t.Fatalf("%s: factors not orthonormal", label)
	}
	for i := 1; i < k; i++ {
		if res.S[i] > res.S[i-1]+tol {
			t.Fatalf("%s: singular values not sorted: %v", label, res.S)
		}
	}
	for _, v := range res.S {
		if v < 0 {
			t.Fatalf("%s: negative singular value %g", label, v)
		}
	}
}

func TestGKReconstructionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{5, 5}, {12, 4}, {4, 12}, {1, 1}, {9, 1}, {1, 9}, {40, 15}, {15, 40}, {60, 60}} {
		a := RandN(dims[0], dims[1], rng)
		res, err := SVDGolubKahan(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		checkSVD(t, a, res, 1e-10, "GK")
	}
}

func TestGKMatchesJacobiSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(20)
		n := 1 + rng.Intn(20)
		a := RandN(m, n, rng)
		gk, err := SVDGolubKahan(a)
		if err != nil {
			t.Fatal(err)
		}
		ja, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gk.S {
			if math.Abs(gk.S[i]-ja.S[i]) > 1e-9*(1+ja.S[0]) {
				t.Fatalf("trial %d: σ%d GK %g vs Jacobi %g", trial, i, gk.S[i], ja.S[i])
			}
		}
	}
}

func TestGKRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	res, err := SVDGolubKahan(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.S[1] > 1e-12 {
		t.Fatalf("σ₂ = %g for rank-1 input", res.S[1])
	}
	checkSVD(t, a, res, 1e-10, "GK rank-deficient")
}

func TestGKZeroMatrix(t *testing.T) {
	res, err := SVDGolubKahan(New(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.S {
		if v != 0 {
			t.Fatalf("σ = %v", res.S)
		}
	}
	checkSVD(t, New(5, 3), res, 1e-12, "GK zero")
}

func TestGKHilbert(t *testing.T) {
	h := hilbert(10)
	res, err := SVDGolubKahan(h)
	if err != nil {
		t.Fatal(err)
	}
	checkSVD(t, h, res, 1e-12, "GK Hilbert")
	if math.Abs(res.S[0]-1.7519) > 1e-3 {
		t.Fatalf("σ₁ = %g", res.S[0])
	}
}

func TestGKDiagonal(t *testing.T) {
	a := New(4, 4)
	for i, v := range []float64{3, -7, 0.5, 2} {
		a.Set(i, i, v)
	}
	res, err := SVDGolubKahan(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 3, 2, 0.5}
	for i := range want {
		if math.Abs(res.S[i]-want[i]) > 1e-12 {
			t.Fatalf("S = %v, want %v", res.S, want)
		}
	}
}

func TestGKPropertyFrobenius(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(12)
		n := 1 + rng.Intn(12)
		a := RandN(m, n, rng)
		res, err := SVDGolubKahan(a)
		if err != nil {
			return false
		}
		ss := 0.0
		for _, v := range res.S {
			ss += v * v
		}
		na := a.Norm()
		return math.Abs(ss-na*na) <= 1e-9*(1+na*na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGKEmpty(t *testing.T) {
	res, err := SVDGolubKahan(New(0, 0))
	if err != nil || len(res.S) != 0 {
		t.Fatalf("empty SVD: %v %v", res, err)
	}
}

func BenchmarkSVDJacobi200(b *testing.B) { benchSVDMethod(b, 200, SVD) }
func BenchmarkSVDGK200(b *testing.B) {
	benchSVDMethod(b, 200, SVDGolubKahan)
}

func benchSVDMethod(b *testing.B, n int, f func(*Dense) (SVDResult, error)) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(n, n, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(a); err != nil {
			b.Fatal(err)
		}
	}
}
