package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// isOrthonormalCols reports whether q's columns are orthonormal within tol.
func isOrthonormalCols(q *Dense, tol float64) bool {
	g := Gram(q)
	return g.EqualApprox(Identity(q.Cols()), tol)
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, dims := range [][2]int{{5, 5}, {10, 4}, {4, 10}, {1, 1}, {7, 1}, {1, 7}, {50, 12}} {
		a := RandN(dims[0], dims[1], rng)
		res := QR(a)
		if !Mul(res.Q, res.R).EqualApprox(a, 1e-11) {
			t.Fatalf("QR reconstruction failed for %dx%d", dims[0], dims[1])
		}
		if !isOrthonormalCols(res.Q, 1e-11) {
			t.Fatalf("Q not orthonormal for %dx%d", dims[0], dims[1])
		}
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := RandN(8, 5, rng)
	r := QR(a).R
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < i && j < r.Cols(); j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %g below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still reconstruct.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	res := QR(a)
	if !Mul(res.Q, res.R).EqualApprox(a, 1e-12) {
		t.Fatal("QR reconstruction failed for rank-deficient input")
	}
}

func TestQRZeroMatrix(t *testing.T) {
	a := New(4, 3)
	res := QR(a)
	if !Mul(res.Q, res.R).EqualApprox(a, 1e-14) {
		t.Fatal("QR of zero matrix does not reconstruct")
	}
}

func TestOrthonormalizeSpansSameSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := RandN(9, 3, rng)
	q := Orthonormalize(a)
	if !isOrthonormalCols(q, 1e-11) {
		t.Fatal("Orthonormalize result not orthonormal")
	}
	// Projection of a onto span(q) must equal a.
	proj := Mul(q, MulTA(q, a))
	if !proj.EqualApprox(a, 1e-10) {
		t.Fatal("Orthonormalize changed the column space")
	}
}

func TestQRPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(15)
		n := 1 + rng.Intn(15)
		a := RandN(m, n, rng)
		res := QR(a)
		return Mul(res.Q, res.R).EqualApprox(a, 1e-10) && isOrthonormalCols(res.Q, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	r := FromRows([][]float64{{2, 1}, {0, 4}})
	x, err := SolveUpperTriangular(r, []float64{5, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, 4y = 8 → y=2, x=1.5.
	if !almostEqual(x[0], 1.5, 1e-14) || !almostEqual(x[1], 2, 1e-14) {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveUpperTriangularSingular(t *testing.T) {
	r := FromRows([][]float64{{1, 1}, {0, 0}})
	if _, err := SolveUpperTriangular(r, []float64{1, 1}); err == nil {
		t.Fatal("expected error for singular triangular system")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := RandN(10, 4, rng)
	xTrue := RandN(4, 2, rng)
	b := Mul(a, xTrue)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.EqualApprox(xTrue, 1e-10) {
		t.Fatal("least squares did not recover exact solution")
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := RandN(12, 3, rng)
	b := RandN(12, 1, rng)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := b.Sub(Mul(a, x))
	// Aᵀ·resid ≈ 0 characterizes the LS minimizer.
	if MulTA(a, resid).MaxAbs() > 1e-10 {
		t.Fatal("least-squares residual not orthogonal to column space")
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LeastSquares(New(2, 4), New(2, 1)); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveVec([]float64{10, 12})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+3y=10, 6x+3y=12 → x=1, y=2.
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("LU solve = %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LU(a); err == nil {
		t.Fatal("expected error factoring singular matrix")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	f, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); !almostEqual(got, -2, 1e-12) {
		t.Fatalf("Det = %g, want -2", got)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		a := RandN(n, n, rng)
		inv, err := Inverse(a)
		if err != nil {
			continue // singular draw is astronomically unlikely but legal
		}
		if !Mul(a, inv).EqualApprox(Identity(n), 1e-9) {
			t.Fatalf("A·A⁻¹ != I for n=%d", n)
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	b := RandN(6, 4, rng)
	a := Gram(b) // SPD (a.s. full rank)
	// Add ridge to guarantee positive definiteness.
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+0.1)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !MulTB(l, l).EqualApprox(a, 1e-10) {
		t.Fatal("L·Lᵀ != A")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	b := RandN(8, 3, rng)
	a := Gram(b)
	for i := 0; i < 3; i++ {
		a.Set(i, i, a.At(i, i)+0.5)
	}
	rhs := RandN(3, 2, rng)
	x, err := SolveSPD(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, x).EqualApprox(rhs, 1e-9) {
		t.Fatal("SolveSPD residual too large")
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 7}})
	res, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Values[0], 7, 1e-12) || !almostEqual(res.Values[1], 3, 1e-12) {
		t.Fatalf("eigenvalues = %v", res.Values)
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	res, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Values[0], 3, 1e-12) || !almostEqual(res.Values[1], 1, 1e-12) {
		t.Fatalf("eigenvalues = %v", res.Values)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for _, n := range []int{1, 2, 3, 5, 10, 20} {
		b := RandN(n+3, n, rng)
		a := Gram(b)
		res, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild V·Λ·Vᵀ.
		lam := New(n, n)
		for i, v := range res.Values {
			lam.Set(i, i, v)
		}
		rebuilt := Mul(Mul(res.Vectors, lam), res.Vectors.T())
		if !rebuilt.EqualApprox(a, 1e-9*(1+a.Norm())) {
			t.Fatalf("eig reconstruction failed for n=%d", n)
		}
		if !isOrthonormalCols(res.Vectors, 1e-10) {
			t.Fatalf("eigenvectors not orthonormal for n=%d", n)
		}
	}
}

func TestSymEigValuesSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := Gram(RandN(12, 6, rng))
	res, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Values); i++ {
		if res.Values[i] > res.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", res.Values)
		}
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, dims := range [][2]int{{5, 5}, {12, 4}, {4, 12}, {1, 1}, {9, 1}, {1, 9}, {40, 15}} {
		a := RandN(dims[0], dims[1], rng)
		res, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		k := len(res.S)
		sig := New(k, k)
		for i, v := range res.S {
			sig.Set(i, i, v)
		}
		rebuilt := Mul(Mul(res.U, sig), res.V.T())
		if !rebuilt.EqualApprox(a, 1e-10*(1+a.Norm())) {
			t.Fatalf("SVD reconstruction failed for %dx%d", dims[0], dims[1])
		}
		if !isOrthonormalCols(res.U, 1e-10) || !isOrthonormalCols(res.V, 1e-10) {
			t.Fatalf("SVD factors not orthonormal for %dx%d", dims[0], dims[1])
		}
	}
}

func TestSVDSingularValuesSortedNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	res, err := SVD(RandN(10, 7, rng))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.S {
		if v < 0 {
			t.Fatalf("negative singular value %g", v)
		}
		if i > 0 && v > res.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", res.S)
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := FromRows([][]float64{{0, 3}, {2, 0}})
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.S[0], 3, 1e-12) || !almostEqual(res.S[1], 2, 1e-12) {
		t.Fatalf("singular values = %v, want [3 2]", res.S)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value must vanish and factors stay
	// orthonormal.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.S[1] > 1e-10 {
		t.Fatalf("rank-1 input produced σ₂ = %g", res.S[1])
	}
	if !isOrthonormalCols(res.U, 1e-10) {
		t.Fatal("U not orthonormal for rank-deficient input")
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	res, err := SVD(New(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.S {
		if v != 0 {
			t.Fatalf("zero matrix has σ = %v", res.S)
		}
	}
	if !isOrthonormalCols(res.U, 1e-10) || !isOrthonormalCols(res.V, 1e-10) {
		t.Fatal("zero-matrix SVD factors not orthonormal")
	}
}

func TestSVDFrobeniusIdentity(t *testing.T) {
	// ‖A‖_F² = Σσ², a classic invariant.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		a := RandN(m, n, rng)
		res, err := SVD(a)
		if err != nil {
			return false
		}
		ss := 0.0
		for _, v := range res.S {
			ss += v * v
		}
		na := a.Norm()
		return math.Abs(ss-na*na) <= 1e-9*(1+na*na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDTruncateBestApproximation(t *testing.T) {
	// Eckart–Young sanity: truncated reconstruction error equals the tail
	// singular values' energy.
	rng := rand.New(rand.NewSource(32))
	a := RandN(10, 8, rng)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	tr := res.Truncate(k)
	sig := New(k, k)
	for i, v := range tr.S {
		sig.Set(i, i, v)
	}
	approx := Mul(Mul(tr.U, sig), tr.V.T())
	errNorm := a.Sub(approx).Norm()
	tail := 0.0
	for _, v := range res.S[k:] {
		tail += v * v
	}
	if !almostEqual(errNorm, math.Sqrt(tail), 1e-8) {
		t.Fatalf("truncation error %g, want %g", errNorm, math.Sqrt(tail))
	}
}

func TestLeadingLeftMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := RandN(30, 6, rng)
	full, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []LeadingMethod{LeadingJacobi, LeadingGram, LeadingAuto} {
		u, err := LeadingLeft(a, 3, method)
		if err != nil {
			t.Fatal(err)
		}
		if !isOrthonormalCols(u, 1e-9) {
			t.Fatalf("method %d: not orthonormal", method)
		}
		// Compare subspaces: ‖UᵀU_ref‖ per column should be 1.
		for j := 0; j < 3; j++ {
			overlap := 0.0
			for c := 0; c < 3; c++ {
				d := 0.0
				for i := 0; i < 30; i++ {
					d += u.At(i, c) * full.U.At(i, j)
				}
				overlap += d * d
			}
			if !almostEqual(overlap, 1, 1e-6) {
				t.Fatalf("method %d: subspace overlap %g for direction %d", method, overlap, j)
			}
		}
	}
}

func TestLeadingLeftWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a := RandN(5, 40, rng)
	u, err := LeadingLeft(a, 4, LeadingAuto)
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows() != 5 || u.Cols() != 4 {
		t.Fatalf("dims %dx%d", u.Rows(), u.Cols())
	}
	if !isOrthonormalCols(u, 1e-9) {
		t.Fatal("not orthonormal")
	}
}

func TestLeadingLeftMoreThanRank(t *testing.T) {
	// k greater than min(m,n): must pad with an orthonormal completion.
	rng := rand.New(rand.NewSource(35))
	a := RandN(8, 2, rng)
	u, err := LeadingLeft(a, 5, LeadingJacobi)
	if err != nil {
		t.Fatal(err)
	}
	if u.Cols() != 5 {
		t.Fatalf("cols = %d, want 5", u.Cols())
	}
	if !isOrthonormalCols(u, 1e-9) {
		t.Fatal("completion not orthonormal")
	}
}

func TestRandOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	q := RandOrthonormal(10, 4, rng)
	if !isOrthonormalCols(q, 1e-11) {
		t.Fatal("RandOrthonormal not orthonormal")
	}
}

func BenchmarkSVD100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(100, 100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeadingVectorsJacobi(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(2000, 20, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeadingLeft(a, 10, LeadingJacobi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeadingVectorsGram(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(2000, 20, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeadingLeft(a, 10, LeadingGram); err != nil {
			b.Fatal(err)
		}
	}
}
