package mat

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// workers controls how many goroutines matrix multiplication may use.
// The default of 1 matches the single-thread evaluation protocol of the
// paper; SetWorkers raises it for callers that want parallel kernels.
var (
	workersMu sync.RWMutex
	workers   = 1
)

// SetWorkers sets the number of goroutines used by large multiplications.
// n < 1 is treated as 1. It returns the previous setting.
func SetWorkers(n int) int {
	workersMu.Lock()
	defer workersMu.Unlock()
	prev := workers
	if n < 1 {
		n = 1
	}
	workers = n
	return prev
}

// Workers returns the current multiplication parallelism.
func Workers() int {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return workers
}

// effectiveWorkers returns the number of goroutines a row-parallel kernel
// over the given work would actually use: the configured Workers, capped so
// each goroutine gets enough flops to amortize its startup and never more
// than one row's worth of workers.
func effectiveWorkers(rows, flopsPerRow int) int {
	w := Workers()
	const minFlopsPerWorker = 1 << 16
	if w > 1 && rows > 1 && flopsPerRow > 0 {
		maxUseful := rows * flopsPerRow / minFlopsPerWorker
		if maxUseful < w {
			w = maxUseful
		}
	}
	if w <= 1 || rows <= 1 {
		return 1
	}
	if w > rows {
		w = rows
	}
	return w
}

// parallelRows runs fn over row ranges [lo,hi) split across the configured
// workers when the estimated work is large enough to amortize goroutines.
func parallelRows(rows int, flopsPerRow int, fn func(lo, hi int)) {
	w := effectiveWorkers(rows, flopsPerRow)
	if w <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + w - 1) / w
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Mul returns a·b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a·b, overwriting dst. dst must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination %d×%d for %d×%d product", dst.rows, dst.cols, a.rows, b.cols))
	}
	dst.Zero()
	MulAddInto(dst, a, b)
}

// MulAddInto computes dst += a·b. dst must not alias a or b.
//
// The kernel uses i-k-j loop ordering so the inner loop is a contiguous
// axpy over rows of b, which the compiler vectorizes well; rows of the
// output are optionally split across workers.
func MulAddInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulAddInto dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulAddInto destination %d×%d for %d×%d product", dst.rows, dst.cols, a.rows, b.cols))
	}
	metrics.CountMatmul(a.rows, a.cols, b.cols)
	n, inner := b.cols, a.cols
	// The single-worker path calls the range kernel directly: no closure is
	// created, keeping repeated accumulation into a preallocated dst
	// allocation-free (asserted by TestKernelsZeroAllocWithMetricsDisabled).
	if effectiveWorkers(a.rows, 2*inner*n) <= 1 {
		mulAddRows(dst, a, b, 0, a.rows)
		return
	}
	parallelRows(a.rows, 2*inner*n, func(lo, hi int) {
		mulAddRows(dst, a, b, lo, hi)
	})
}

// mulAddRows accumulates rows [lo,hi) of a·b into dst using i-k-j ordering.
func mulAddRows(dst, a, b *Dense, lo, hi int) {
	n, inner := b.cols, a.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*inner : (i+1)*inner]
		drow := dst.data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulTA returns aᵀ·b without materializing the transpose.
func MulTA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulTA dimension mismatch (%d×%d)ᵀ · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	metrics.CountMatmul(a.cols, a.rows, b.cols)
	out := New(a.cols, b.cols)
	// outᵀ accumulation: out[k,j] += a[i,k]*b[i,j]; iterate i outer so both
	// reads are contiguous.
	n := b.cols
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		brow := b.data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulTB returns a·bᵀ without materializing the transpose.
func MulTB(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTB dimension mismatch %d×%d · (%d×%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	metrics.CountMatmul(a.rows, a.cols, b.rows)
	out := New(a.rows, b.rows)
	inner := a.cols
	parallelRows(a.rows, 2*inner*b.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*inner : (i+1)*inner]
			orow := out.data[i*b.rows : (i+1)*b.rows]
			for j := 0; j < b.rows; j++ {
				orow[j] = Dot(arow, b.data[j*inner:(j+1)*inner])
			}
		}
	})
	return out
}

// Gram returns aᵀ·a, exploiting symmetry.
func Gram(a *Dense) *Dense {
	metrics.CountGram(a.rows, a.cols)
	n := a.cols
	out := New(n, n)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*n : (i+1)*n]
		for k, v := range row {
			if v == 0 {
				continue
			}
			orow := out.data[k*n : (k+1)*n]
			for j := k; j < n; j++ {
				orow[j] += v * row[j]
			}
		}
	}
	for k := 0; k < n; k++ {
		for j := k + 1; j < n; j++ {
			out.data[j*n+k] = out.data[k*n+j]
		}
	}
	return out
}

// MulVec returns a·x for a vector x of length a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d×%d · %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
	return out
}

// MulVecT returns aᵀ·x for a vector x of length a.Rows().
func MulVecT(a *Dense, x []float64) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch (%d×%d)ᵀ · %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		Axpy(xv, a.data[i*a.cols:(i+1)*a.cols], out)
	}
	return out
}

// Kronecker returns the Kronecker product a ⊗ b.
func Kronecker(a, b *Dense) *Dense {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for ia := 0; ia < a.rows; ia++ {
		for ja := 0; ja < a.cols; ja++ {
			av := a.data[ia*a.cols+ja]
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.rows; ib++ {
				dst := out.data[(ia*b.rows+ib)*out.cols+ja*b.cols : (ia*b.rows+ib)*out.cols+(ja+1)*b.cols]
				src := b.data[ib*b.cols : (ib+1)*b.cols]
				for k, bv := range src {
					dst[k] = av * bv
				}
			}
		}
	}
	return out
}

// KronRow writes the Kronecker product of the given row vectors into dst
// (dst length must equal the product of the row lengths) and returns dst.
// Rows are combined left-to-right: dst = rows[0] ⊗ rows[1] ⊗ … .
func KronRow(dst []float64, rows ...[]float64) []float64 {
	size := 1
	for _, r := range rows {
		size *= len(r)
	}
	if len(dst) != size {
		panic(fmt.Sprintf("mat: KronRow destination length %d, need %d", len(dst), size))
	}
	if size == 0 {
		return dst
	}
	dst[0] = 1
	cur := 1
	for _, r := range rows {
		// Expand the current prefix of length cur by factor len(r),
		// building from the back so in-place expansion is safe.
		for i := cur - 1; i >= 0; i-- {
			v := dst[i]
			base := i * len(r)
			for j := len(r) - 1; j >= 0; j-- {
				dst[base+j] = v * r[j]
			}
		}
		cur *= len(r)
	}
	return dst
}
