package mat

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/pool"
)

// defaultPool backs the kernels when no explicit pool is passed (the plain
// Mul/MulInto/... entry points). It starts at size 1, matching the paper's
// single-thread evaluation protocol; the deprecated SetWorkers resizes it.
// Decompositions do not read it — they carry their own pool through
// core.Options and call the ...P variants.
var defaultPool atomic.Pointer[pool.Pool]

func init() { defaultPool.Store(pool.New(1)) }

// SetWorkers resizes the process-default pool used by kernels called
// without an explicit pool. n < 1 is treated as 1. It returns the previous
// setting.
//
// Deprecated: parallelism is per-decomposition now — pass Workers (or a
// shared *pool.Pool) in core.Options instead, so concurrent callers cannot
// stomp each other's setting. SetWorkers remains as a shim for standalone
// kernel users and the baseline methods.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	for {
		old := defaultPool.Load()
		if defaultPool.CompareAndSwap(old, pool.New(n)) {
			return old.Size()
		}
	}
}

// Workers returns the size of the process-default pool.
//
// Deprecated: see SetWorkers.
func Workers() int { return defaultPool.Load().Size() }

// effectiveWorkers returns the number of goroutines a row-parallel kernel
// over the given work would actually use: the pool size, capped so each
// goroutine gets enough flops to amortize its startup and never more than
// one row's worth of workers.
func effectiveWorkers(size, rows, flopsPerRow int) int {
	w := size
	const minFlopsPerWorker = 1 << 16
	if w > 1 && rows > 1 && flopsPerRow > 0 {
		// rows·flopsPerRow can overflow int for very large shapes, which
		// would make maxUseful negative and silently serialize the region;
		// an overflowing product is by definition plenty of work for every
		// worker, so saturate at the pool size instead of multiplying.
		maxUseful := w
		if rows <= math.MaxInt/flopsPerRow {
			maxUseful = rows * flopsPerRow / minFlopsPerWorker
		}
		if maxUseful < w {
			w = maxUseful
		}
	}
	if w <= 1 || rows <= 1 {
		return 1
	}
	if w > rows {
		w = rows
	}
	return w
}

// parallelRows runs fn over row ranges [lo,hi) split across the pool's
// workers when the estimated work is large enough to amortize goroutines.
// Each row is computed by exactly one worker with identical arithmetic, so
// results are bit-identical for every pool size.
//
// The kernels have no error channel, so a panic contained in a pool worker
// is re-raised here on the caller's goroutine — same visible behavior as a
// serial kernel panicking, but without an unrecoverable crash on a detached
// worker; the exported core entry points convert it to a returned error.
func parallelRows(p *pool.Pool, rows int, flopsPerRow int, fn func(lo, hi int)) {
	w := effectiveWorkers(p.Size(), rows, flopsPerRow)
	if w <= 1 {
		fn(0, rows)
		return
	}
	if err := p.RunRanges(nil, rows, w, func(_, lo, hi int) error { fn(lo, hi); return nil }); err != nil {
		panic(err)
	}
}

// Mul returns a·b, parallelized on the process-default pool.
func Mul(a, b *Dense) *Dense { return MulP(a, b, defaultPool.Load()) }

// MulP returns a·b, parallelized on p (nil p runs single-threaded).
func MulP(a, b *Dense, p *pool.Pool) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MulAddIntoP(out, a, b, p)
	return out
}

// MulInto computes dst = a·b, overwriting dst. dst must not alias a or b.
func MulInto(dst, a, b *Dense) { MulIntoP(dst, a, b, defaultPool.Load()) }

// MulIntoP is MulInto parallelized on p (nil p runs single-threaded).
func MulIntoP(dst, a, b *Dense, p *pool.Pool) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination %d×%d for %d×%d product", dst.rows, dst.cols, a.rows, b.cols))
	}
	dst.Zero()
	MulAddIntoP(dst, a, b, p)
}

// MulAddInto computes dst += a·b. dst must not alias a or b.
func MulAddInto(dst, a, b *Dense) { MulAddIntoP(dst, a, b, defaultPool.Load()) }

// MulAddIntoP computes dst += a·b with rows of the output split across p's
// workers. dst must not alias a or b.
//
// The kernel uses i-k-j loop ordering so the inner loop is a contiguous
// axpy over rows of b, which the compiler vectorizes well. Each output row
// is owned by one worker, so the result is bit-identical for any pool size.
func MulAddIntoP(dst, a, b *Dense, p *pool.Pool) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulAddInto dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulAddInto destination %d×%d for %d×%d product", dst.rows, dst.cols, a.rows, b.cols))
	}
	metrics.CountMatmul(a.rows, a.cols, b.cols)
	t0 := metrics.HistStart()
	n, inner := b.cols, a.cols
	// The single-worker path calls the range kernel directly: no closure is
	// created, keeping repeated accumulation into a preallocated dst
	// allocation-free (asserted by TestKernelsZeroAllocWithMetricsDisabled).
	if effectiveWorkers(p.Size(), a.rows, 2*inner*n) <= 1 {
		mulAddRows(dst, a, b, 0, a.rows)
		metrics.ObserveSince(metrics.HistMatmul, t0)
		return
	}
	parallelRows(p, a.rows, 2*inner*n, func(lo, hi int) {
		mulAddRows(dst, a, b, lo, hi)
	})
	metrics.ObserveSince(metrics.HistMatmul, t0)
}

// mulAddRows accumulates rows [lo,hi) of a·b into dst. Inputs small enough
// for b to sit in cache take the plain streaming kernel (the allocation-free
// hot path); larger inputs take the cache-blocked kernel in blockedMulAddRows.
// Both accumulate each output element's k-terms in the same ascending order,
// so the result is bit-identical regardless of which path (or block size)
// ran — see block.go.
func mulAddRows(dst, a, b *Dense, lo, hi int) {
	n, inner := b.cols, a.cols
	kc, nc := BlockSizes()
	if inner <= kc && n <= nc {
		mulAddRowsPlain(dst, a, b, lo, hi)
		return
	}
	blockedMulAddRows(dst, a, b, lo, hi, kc, nc)
}

// mulAddRowsPlain is the single-tile i-k-j kernel: the inner loop is a
// contiguous axpy over rows of b, which the compiler vectorizes well.
func mulAddRowsPlain(dst, a, b *Dense, lo, hi int) {
	n, inner := b.cols, a.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*inner : (i+1)*inner]
		drow := dst.data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// blockedMulAddRows is the cache-blocked kernel: it tiles k into kc-panels
// and j into nc-panels so one panel of b is reused across every row of the
// range, and packs the panel into a contiguous pooled tile when the j
// dimension is split and enough rows will amortize the copy. k-panels are
// visited in ascending order and each (i,j) element is touched by exactly
// one j-panel, so the accumulation order — and therefore every bit of the
// result — matches the plain kernel.
func blockedMulAddRows(dst, a, b *Dense, lo, hi, kc, nc int) {
	n, inner := b.cols, a.cols
	var t *tile
	if n > nc && hi-lo >= minPackRows {
		t = tilePool.Get().(*tile)
		if cap(t.buf) < kc*nc {
			t.buf = make([]float64, kc*nc)
		}
	}
	for k0 := 0; k0 < inner; k0 += kc {
		k1 := min(k0+kc, inner)
		for j0 := 0; j0 < n; j0 += nc {
			j1 := min(j0+nc, n)
			w := j1 - j0
			var panel []float64
			if t != nil {
				panel = t.buf[:(k1-k0)*w]
				for k := k0; k < k1; k++ {
					copy(panel[(k-k0)*w:(k-k0+1)*w], b.data[k*n+j0:k*n+j1])
				}
			}
			for i := lo; i < hi; i++ {
				arow := a.data[i*inner+k0 : i*inner+k1]
				drow := dst.data[i*n+j0 : i*n+j1]
				if t != nil {
					for kk, av := range arow {
						if av == 0 {
							continue
						}
						brow := panel[kk*w : (kk+1)*w]
						for j, bv := range brow {
							drow[j] += av * bv
						}
					}
					continue
				}
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					brow := b.data[(k0+kk)*n+j0 : (k0+kk)*n+j1]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
	if t != nil {
		tilePool.Put(t)
	}
}

// MulTA returns aᵀ·b without materializing the transpose.
func MulTA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulTA dimension mismatch (%d×%d)ᵀ · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.cols, b.cols)
	MulTAInto(out, a, b)
	return out
}

// MulTAInto computes dst = aᵀ·b, overwriting dst, without materializing the
// transpose or allocating. dst must be a.Cols()×b.Cols() and must not alias
// a or b. The kernel is deliberately serial: its output rows are written by
// accumulation over a's rows, so row-splitting would need a reduction.
func MulTAInto(dst, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulTAInto dimension mismatch (%d×%d)ᵀ · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTAInto destination %d×%d for %d×%d product", dst.rows, dst.cols, a.cols, b.cols))
	}
	metrics.CountMatmul(a.cols, a.rows, b.cols)
	t0 := metrics.HistStart()
	dst.Zero()
	// dstᵀ accumulation: dst[k,j] += a[i,k]*b[i,j]; iterate i outer so both
	// reads are contiguous.
	n := b.cols
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		brow := b.data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			orow := dst.data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	metrics.ObserveSince(metrics.HistMatmul, t0)
}

// MulTB returns a·bᵀ without materializing the transpose, parallelized on
// the process-default pool.
func MulTB(a, b *Dense) *Dense { return MulTBP(a, b, defaultPool.Load()) }

// MulTBP is MulTB parallelized on p (nil p runs single-threaded).
func MulTBP(a, b *Dense, p *pool.Pool) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTB dimension mismatch %d×%d · (%d×%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	metrics.CountMatmul(a.rows, a.cols, b.rows)
	t0 := metrics.HistStart()
	out := New(a.rows, b.rows)
	inner := a.cols
	parallelRows(p, a.rows, 2*inner*b.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*inner : (i+1)*inner]
			orow := out.data[i*b.rows : (i+1)*b.rows]
			for j := 0; j < b.rows; j++ {
				orow[j] = Dot(arow, b.data[j*inner:(j+1)*inner])
			}
		}
	})
	metrics.ObserveSince(metrics.HistMatmul, t0)
	return out
}

// Gram returns aᵀ·a, exploiting symmetry.
func Gram(a *Dense) *Dense {
	metrics.CountGram(a.rows, a.cols)
	t0 := metrics.HistStart()
	defer metrics.ObserveSince(metrics.HistMatmul, t0)
	n := a.cols
	out := New(n, n)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*n : (i+1)*n]
		for k, v := range row {
			if v == 0 {
				continue
			}
			orow := out.data[k*n : (k+1)*n]
			for j := k; j < n; j++ {
				orow[j] += v * row[j]
			}
		}
	}
	for k := 0; k < n; k++ {
		for j := k + 1; j < n; j++ {
			out.data[j*n+k] = out.data[k*n+j]
		}
	}
	return out
}

// MulVec returns a·x for a vector x of length a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d×%d · %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
	return out
}

// MulVecT returns aᵀ·x for a vector x of length a.Rows().
func MulVecT(a *Dense, x []float64) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch (%d×%d)ᵀ · %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		Axpy(xv, a.data[i*a.cols:(i+1)*a.cols], out)
	}
	return out
}

// Kronecker returns the Kronecker product a ⊗ b.
func Kronecker(a, b *Dense) *Dense {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for ia := 0; ia < a.rows; ia++ {
		for ja := 0; ja < a.cols; ja++ {
			av := a.data[ia*a.cols+ja]
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.rows; ib++ {
				dst := out.data[(ia*b.rows+ib)*out.cols+ja*b.cols : (ia*b.rows+ib)*out.cols+(ja+1)*b.cols]
				src := b.data[ib*b.cols : (ib+1)*b.cols]
				for k, bv := range src {
					dst[k] = av * bv
				}
			}
		}
	}
	return out
}

// KronRow writes the Kronecker product of the given row vectors into dst
// (dst length must equal the product of the row lengths) and returns dst.
// Rows are combined left-to-right: dst = rows[0] ⊗ rows[1] ⊗ … .
func KronRow(dst []float64, rows ...[]float64) []float64 {
	size := 1
	for _, r := range rows {
		size *= len(r)
	}
	if len(dst) != size {
		panic(fmt.Sprintf("mat: KronRow destination length %d, need %d", len(dst), size))
	}
	if size == 0 {
		return dst
	}
	dst[0] = 1
	cur := 1
	for _, r := range rows {
		// Expand the current prefix of length cur by factor len(r),
		// building from the back so in-place expansion is safe.
		for i := cur - 1; i >= 0; i-- {
			v := dst[i]
			base := i * len(r)
			for j := len(r) - 1; j >= 0; j-- {
				dst[base+j] = v * r[j]
			}
		}
		cur *= len(r)
	}
	return dst
}
