package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the reference triple loop used to validate the optimized
// kernels.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			s := 0.0
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulSmallKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.EqualApprox(want, 1e-14) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(6, 4, rng)
	if !Mul(a, Identity(4)).EqualApprox(a, 1e-14) {
		t.Fatal("A·I != A")
	}
	if !Mul(Identity(6), a).EqualApprox(a, 1e-14) {
		t.Fatal("I·A != A")
	}
}

func TestMulMatchesNaiveRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.Intn(12)
		k := 1 + rng.Intn(12)
		n := 1 + rng.Intn(12)
		a := RandN(m, k, rng)
		b := RandN(k, n, rng)
		if !Mul(a, b).EqualApprox(naiveMul(a, b), 1e-12) {
			t.Fatalf("Mul mismatch for %d×%d · %d×%d", m, k, k, n)
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched inner dims did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulTAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandN(7, 3, rng)
	b := RandN(7, 5, rng)
	if !MulTA(a, b).EqualApprox(Mul(a.T(), b), 1e-12) {
		t.Fatal("MulTA != Aᵀ·B")
	}
}

func TestMulTBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandN(4, 6, rng)
	b := RandN(3, 6, rng)
	if !MulTB(a, b).EqualApprox(Mul(a, b.T()), 1e-12) {
		t.Fatal("MulTB != A·Bᵀ")
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandN(8, 5, rng)
	if !Gram(a).EqualApprox(Mul(a.T(), a), 1e-12) {
		t.Fatal("Gram != AᵀA")
	}
}

func TestGramSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Gram(RandN(9, 4, rng))
	if !g.EqualApprox(g.T(), 0) {
		t.Fatal("Gram result not exactly symmetric")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := MulVec(a, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-14) {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	gotT := MulVecT(a, []float64{1, 1, 1})
	wantT := []float64{9, 12}
	for i := range wantT {
		if !almostEqual(gotT[i], wantT[i], 1e-14) {
			t.Fatalf("MulVecT[%d] = %g, want %g", i, gotT[i], wantT[i])
		}
	}
}

func TestMulAddIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := RandN(3, 4, rng)
	b := RandN(4, 2, rng)
	dst := RandN(3, 2, rng)
	want := dst.Add(Mul(a, b))
	MulAddInto(dst, a, b)
	if !dst.EqualApprox(want, 1e-12) {
		t.Fatal("MulAddInto does not accumulate correctly")
	}
}

func TestMulParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := RandN(129, 64, rng)
	b := RandN(64, 80, rng)
	seq := Mul(a, b)
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	par := Mul(a, b)
	if !par.EqualApprox(seq, 1e-11) {
		t.Fatal("parallel Mul disagrees with sequential")
	}
}

func TestSetWorkersClamps(t *testing.T) {
	prev := SetWorkers(-3)
	defer SetWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-3), want 1", Workers())
	}
}

func TestKroneckerKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	got := Kronecker(a, b)
	want := FromRows([][]float64{{0, 1, 0, 2}, {1, 0, 2, 0}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("Kronecker = %v", got)
	}
}

func TestKroneckerMixedProductProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD) — the identity the Tucker updates lean on.
	rng := rand.New(rand.NewSource(10))
	a := RandN(3, 2, rng)
	b := RandN(2, 4, rng)
	c := RandN(2, 3, rng)
	d := RandN(4, 2, rng)
	lhs := Mul(Kronecker(a, b), Kronecker(c, d))
	rhs := Kronecker(Mul(a, c), Mul(b, d))
	if !lhs.EqualApprox(rhs, 1e-11) {
		t.Fatal("mixed-product property violated")
	}
}

func TestKronRow(t *testing.T) {
	dst := make([]float64, 6)
	KronRow(dst, []float64{1, 2}, []float64{1, 10, 100})
	want := []float64{1, 10, 100, 2, 20, 200}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("KronRow = %v, want %v", dst, want)
		}
	}
}

func TestKronRowMatchesKronecker(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandN(1, 3, rng)
	b := RandN(1, 4, rng)
	c := RandN(1, 2, rng)
	dst := make([]float64, 24)
	KronRow(dst, a.Row(0), b.Row(0), c.Row(0))
	want := Kronecker(Kronecker(a, b), c)
	for i, v := range dst {
		if !almostEqual(v, want.Data()[i], 1e-13) {
			t.Fatalf("KronRow[%d] = %g, want %g", i, v, want.Data()[i])
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (AB)C == A(BC) within roundoff, via testing/quick over seeds.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandN(4, 3, rng)
		b := RandN(3, 5, rng)
		c := RandN(5, 2, rng)
		return Mul(Mul(a, b), c).EqualApprox(Mul(a, Mul(b, c)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandN(4, 3, rng)
		b := RandN(3, 4, rng)
		c := RandN(3, 4, rng)
		return Mul(a, b.Add(c)).EqualApprox(Mul(a, b).Add(Mul(a, c)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(128, 128, rng)
	y := RandN(128, 128, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulTallSkinny(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(4096, 10, rng)
	y := RandN(10, 10, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
