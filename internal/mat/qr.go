package mat

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// QRResult holds a thin QR factorization A = Q·R with Q ∈ R^{m×n}
// column-orthonormal and R ∈ R^{n×n} upper triangular (m ≥ n is not
// required; for m < n, Q is m×m and R is m×n).
type QRResult struct {
	Q *Dense
	R *Dense
}

// QR computes a thin Householder QR factorization of a.
//
// The input is not modified. For an m×n input with k = min(m,n), Q is m×k
// with orthonormal columns and R is k×n upper triangular such that
// a = Q·R to working precision.
func QR(a *Dense) QRResult {
	m, n := a.Dims()
	metrics.CountQR(m, n)
	k := m
	if n < k {
		k = n
	}
	w := a.Clone() // working copy holding Householder vectors below diagonal
	betas := make([]float64, k)

	for j := 0; j < k; j++ {
		// Build the Householder reflector for column j, rows j..m-1.
		norm := 0.0
		for i := j; i < m; i++ {
			v := w.data[i*n+j]
			norm = math.Hypot(norm, v)
		}
		if norm == 0 {
			betas[j] = 0
			continue
		}
		alpha := w.data[j*n+j]
		if alpha > 0 {
			norm = -norm
		}
		// v = x - norm*e1, normalized so v[0] = 1.
		v0 := alpha - norm
		w.data[j*n+j] = norm // R diagonal
		for i := j + 1; i < m; i++ {
			w.data[i*n+j] /= v0
		}
		betas[j] = -v0 / norm // beta = 2/(vᵀv) with v[0]=1 scaling

		// Apply H = I - beta v vᵀ to the trailing columns.
		for c := j + 1; c < n; c++ {
			s := w.data[j*n+c]
			for i := j + 1; i < m; i++ {
				s += w.data[i*n+j] * w.data[i*n+c]
			}
			s *= betas[j]
			w.data[j*n+c] -= s
			for i := j + 1; i < m; i++ {
				w.data[i*n+c] -= s * w.data[i*n+j]
			}
		}
	}

	// Extract R (k×n upper triangular).
	r := New(k, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			r.data[i*n+j] = w.data[i*n+j]
		}
	}

	// Accumulate thin Q by applying reflectors to the first k columns of I,
	// back to front.
	q := New(m, k)
	for j := 0; j < k; j++ {
		q.data[j*k+j] = 1
	}
	for j := k - 1; j >= 0; j-- {
		if betas[j] == 0 {
			continue
		}
		for c := 0; c < k; c++ {
			s := q.data[j*k+c]
			for i := j + 1; i < m; i++ {
				s += w.data[i*n+j] * q.data[i*k+c]
			}
			s *= betas[j]
			q.data[j*k+c] -= s
			for i := j + 1; i < m; i++ {
				q.data[i*k+c] -= s * w.data[i*n+j]
			}
		}
	}
	return QRResult{Q: q, R: r}
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a (the Q factor of its thin QR).
func Orthonormalize(a *Dense) *Dense {
	return QR(a).Q
}

// SolveUpperTriangular solves R·x = b for upper triangular R (n×n) and
// b of length n by back substitution. It returns an error if R has a zero
// (or numerically negligible) diagonal entry.
func SolveUpperTriangular(r *Dense, b []float64) ([]float64, error) {
	n := r.rows
	if r.cols != n {
		panic(fmt.Sprintf("mat: SolveUpperTriangular with non-square %d×%d matrix", r.rows, r.cols))
	}
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveUpperTriangular rhs length %d for %d×%d matrix", len(b), n, n))
	}
	x := make([]float64, n)
	copy(x, b)
	for i := n - 1; i >= 0; i-- {
		d := r.data[i*n+i]
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("mat: singular triangular system (diagonal %d is %g)", i, d)
		}
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= r.data[i*n+j] * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min‖a·x − b‖₂ for each column of b via QR, returning
// the n×p solution matrix for an m×n a and m×p b. It requires a to have
// full column rank and m ≥ n.
func LeastSquares(a, b *Dense) (*Dense, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("mat: LeastSquares underdetermined system %d×%d", m, n)
	}
	if b.rows != m {
		panic(fmt.Sprintf("mat: LeastSquares rhs has %d rows, want %d", b.rows, m))
	}
	qr := QR(a)
	qtb := MulTA(qr.Q, b) // n×p
	x := New(n, b.cols)
	col := make([]float64, n)
	for c := 0; c < b.cols; c++ {
		for i := 0; i < n; i++ {
			col[i] = qtb.data[i*b.cols+c]
		}
		sol, err := SolveUpperTriangular(qr.R, col)
		if err != nil {
			return nil, fmt.Errorf("mat: rank-deficient least squares: %w", err)
		}
		for i := 0; i < n; i++ {
			x.data[i*b.cols+c] = sol[i]
		}
	}
	return x, nil
}
