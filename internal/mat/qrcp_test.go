package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRCPReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{6, 6}, {10, 4}, {4, 10}, {1, 1}, {8, 1}, {1, 8}, {30, 12}} {
		a := RandN(dims[0], dims[1], rng)
		f := QRCP(a)
		// A·P = Q·R  ⇔  A = Q·R·Pᵀ.
		rebuilt := Mul(Mul(f.Q, f.R), f.PermutationMatrix().T())
		if !rebuilt.EqualApprox(a, 1e-11) {
			t.Fatalf("QRCP reconstruction failed for %dx%d", dims[0], dims[1])
		}
		if !isOrthonormalCols(f.Q, 1e-11) {
			t.Fatalf("Q not orthonormal for %dx%d", dims[0], dims[1])
		}
	}
}

func TestQRCPDiagonalNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(20, 15, rng)
	f := QRCP(a)
	n := f.R.Cols()
	for j := 1; j < f.R.Rows(); j++ {
		if math.Abs(f.R.Data()[j*n+j]) > math.Abs(f.R.Data()[(j-1)*n+j-1])+1e-10 {
			t.Fatalf("|r_%d,%d| increases", j, j)
		}
	}
}

func TestQRCPRevealsExactRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, r := range []int{1, 3, 7} {
		u := RandN(20, r, rng)
		v := RandN(r, 12, rng)
		a := Mul(u, v)
		f := QRCP(a)
		if got := f.Rank(0); got != r {
			t.Fatalf("Rank = %d for exact rank-%d matrix", got, r)
		}
	}
}

func TestQRCPRankWithNoiseThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := RandN(25, 4, rng)
	v := RandN(4, 18, rng)
	a := Mul(u, v)
	e := RandN(25, 18, rng)
	a.AddScaledInPlace(1e-10*a.Norm()/e.Norm(), e)
	f := QRCP(a)
	if got := f.Rank(1e-6); got != 4 {
		t.Fatalf("Rank(1e-6) = %d with tiny noise, want 4", got)
	}
}

func TestQRCPZeroMatrix(t *testing.T) {
	f := QRCP(New(5, 3))
	if f.Rank(0) != 0 {
		t.Fatalf("Rank of zero matrix = %d", f.Rank(0))
	}
	if !Mul(Mul(f.Q, f.R), f.PermutationMatrix().T()).EqualApprox(New(5, 3), 1e-14) {
		t.Fatal("zero-matrix QRCP does not reconstruct")
	}
}

func TestNumericalRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if NumericalRank(New(0, 4)) != 0 {
		t.Fatal("empty matrix rank")
	}
	if got := NumericalRank(Identity(6)); got != 6 {
		t.Fatalf("rank(I6) = %d", got)
	}
	q := RandOrthonormal(10, 3, rng)
	if got := NumericalRank(MulTB(q, q)); got != 3 {
		t.Fatalf("rank of rank-3 projector = %d", got)
	}
}

func TestQRCPPropertyPermutationValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		fac := QRCP(RandN(m, n, rng))
		seen := make([]bool, n)
		for _, p := range fac.Perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQRCP100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(100, 100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QRCP(a)
	}
}
