package tucker

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/dterr"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// The .tkm binary format of a Tucker model (see docs/FORMATS.md for the
// cross-format reference):
//
//	magic   [4]byte  "TKM1"
//	order   uint32   number of modes (little endian)
//	core    shape [order]uint64, then ∏shape float64 values
//	factor  ×order: rows,cols uint64, then rows·cols float64 values
//
// All values little endian, float64 as IEEE-754 bits. Readers apply the
// same hardening as tensor.ReadFrom: implausible orders and dimensions are
// rejected before any allocation, element counts accumulate under an
// overflow check, and non-finite data fails at the boundary.
var modelMagic = [4]byte{'T', 'K', 'M', '1'}

// maxWireElems bounds any single core/factor element count accepted when
// reading, mirroring tensor.ReadFrom's corrupt-header defence.
const maxWireElems = 1 << 31

// WriteTo serializes the model in .tkm binary format, implementing
// io.WriterTo. Short writes surface as errors — the byte count is only
// meaningful together with a nil error.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	if err := m.Validate(nil); err != nil {
		return 0, fmt.Errorf("tucker: refusing to serialize inconsistent model: %w", err)
	}
	cw := &tensor.CountingWriter{W: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.Write(modelMagic[:]); err != nil {
		return cw.N, fmt.Errorf("tucker: writing magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(m.Core.Order())); err != nil {
		return cw.N, fmt.Errorf("tucker: writing order: %w", err)
	}
	for _, s := range m.Core.Shape() {
		if err := binary.Write(bw, binary.LittleEndian, uint64(s)); err != nil {
			return cw.N, fmt.Errorf("tucker: writing core shape: %w", err)
		}
	}
	if err := writeFloats(bw, m.Core.Data()); err != nil {
		return cw.N, fmt.Errorf("tucker: writing core: %w", err)
	}
	for n, f := range m.Factors {
		if err := binary.Write(bw, binary.LittleEndian, uint64(f.Rows())); err != nil {
			return cw.N, fmt.Errorf("tucker: writing factor %d rows: %w", n, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(f.Cols())); err != nil {
			return cw.N, fmt.Errorf("tucker: writing factor %d cols: %w", n, err)
		}
		if err := writeFloats(bw, f.Data()); err != nil {
			return cw.N, fmt.Errorf("tucker: writing factor %d: %w", n, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.N, fmt.Errorf("tucker: flushing: %w", err)
	}
	return cw.N, nil
}

// ReadFrom deserializes a .tkm model into m, replacing its contents, and
// implements io.ReaderFrom. Corrupt headers (bad magic, implausible
// shapes, factor/core rank mismatches) and non-finite data are rejected
// with an error and leave m untouched. It reads exactly the model's bytes
// and never past them, so a model can be embedded in a larger stream (the
// Decomposition wire format does this).
func (m *Model) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	read, err := readModel(cr)
	if err != nil {
		return cr.n, err
	}
	*m = *read
	return cr.n, nil
}

// ReadModel deserializes a .tkm model from r.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	if _, err := m.ReadFrom(r); err != nil {
		return nil, err
	}
	return &m, nil
}

func readModel(r io.Reader) (*Model, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("tucker: reading magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("tucker: bad magic %q (not a .tkm model)", magic[:])
	}
	var order uint32
	if err := binary.Read(r, binary.LittleEndian, &order); err != nil {
		return nil, fmt.Errorf("tucker: reading order: %w", err)
	}
	if order == 0 || order > 16 {
		return nil, fmt.Errorf("tucker: implausible order %d", order)
	}
	shape := make([]int, order)
	total := uint64(1)
	for k := range shape {
		var s uint64
		if err := binary.Read(r, binary.LittleEndian, &s); err != nil {
			return nil, fmt.Errorf("tucker: reading core shape: %w", err)
		}
		if s == 0 || s > maxWireElems {
			return nil, fmt.Errorf("tucker: implausible core dimensionality %d", s)
		}
		if total > maxWireElems/s {
			return nil, fmt.Errorf("tucker: core shape %v·%d exceeds element limit", shape[:k], s)
		}
		total *= s
		shape[k] = int(s)
	}
	core := tensor.New(shape...)
	if err := readFloats(r, core.Data(), "core"); err != nil {
		return nil, err
	}
	factors := make([]*mat.Dense, order)
	for n := range factors {
		var rows, cols uint64
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return nil, fmt.Errorf("tucker: reading factor %d rows: %w", n, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return nil, fmt.Errorf("tucker: reading factor %d cols: %w", n, err)
		}
		if rows == 0 || rows > maxWireElems || cols == 0 || cols > maxWireElems {
			return nil, fmt.Errorf("tucker: implausible factor %d shape %d×%d", n, rows, cols)
		}
		if rows > maxWireElems/cols {
			return nil, fmt.Errorf("tucker: factor %d shape %d×%d exceeds element limit", n, rows, cols)
		}
		if int(cols) != shape[n] {
			return nil, fmt.Errorf("tucker: factor %d has %d columns but core mode is %d", n, cols, shape[n])
		}
		f := mat.New(int(rows), int(cols))
		if err := readFloats(r, f.Data(), fmt.Sprintf("factor %d", n)); err != nil {
			return nil, err
		}
		factors[n] = f
	}
	m := &Model{Core: core, Factors: factors}
	if err := m.Validate(nil); err != nil {
		return nil, fmt.Errorf("tucker: deserialized model inconsistent: %w", err)
	}
	return m, nil
}

func writeFloats(w io.Writer, data []float64) error {
	buf := make([]byte, 8)
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readFloats fills dst from r in exact-size chunks: it never requests a
// byte past the last element, so trailing stream content stays unread.
func readFloats(r io.Reader, dst []float64, what string) error {
	const chunkElems = 1 << 13 // 64 KiB reads
	buf := make([]byte, 8*min(len(dst), chunkElems))
	for i := 0; i < len(dst); i += chunkElems {
		n := min(len(dst)-i, chunkElems)
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return fmt.Errorf("tucker: reading %s elements %d.. of %d: %w", what, i, len(dst), err)
		}
		for k := 0; k < n; k++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*k:]))
			if v != v || math.IsInf(v, 0) {
				return fmt.Errorf("tucker: %s element %d is %v: %w", what, i+k, v, dterr.ErrNonFiniteInput)
			}
			dst[i+k] = v
		}
	}
	return nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// tensorJSON and matrixJSON are the JSON wire forms of the model's parts.
// Tensors carry their first-index-fastest data layout, matrices their
// row-major one — each matching the in-memory layout of the native type so
// encoding is a straight copy.
type tensorJSON struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

type modelJSON struct {
	Core    tensorJSON   `json:"core"`
	Factors []matrixJSON `json:"factors"`
}

// MarshalJSON encodes the model with explicit shapes, so a decomposition
// result can travel over the serving API's JSON surface. Infinities and
// NaN cannot occur in a valid model and make encoding fail.
func (m *Model) MarshalJSON() ([]byte, error) {
	if err := m.Validate(nil); err != nil {
		return nil, fmt.Errorf("tucker: refusing to serialize inconsistent model: %w", err)
	}
	mj := modelJSON{
		Core:    tensorJSON{Shape: m.Core.Shape(), Data: m.Core.Data()},
		Factors: make([]matrixJSON, len(m.Factors)),
	}
	for n, f := range m.Factors {
		mj.Factors[n] = matrixJSON{Rows: f.Rows(), Cols: f.Cols(), Data: f.Data()}
	}
	return json.Marshal(mj)
}

// UnmarshalJSON decodes a model, applying the same shape and finiteness
// checks as the binary reader.
func (m *Model) UnmarshalJSON(b []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(b, &mj); err != nil {
		return fmt.Errorf("tucker: decoding model JSON: %w", err)
	}
	total := 1
	for k, s := range mj.Core.Shape {
		if s <= 0 || s > maxWireElems {
			return fmt.Errorf("tucker: implausible core dimensionality %d", s)
		}
		if total > maxWireElems/s {
			return fmt.Errorf("tucker: core shape %v exceeds element limit", mj.Core.Shape[:k+1])
		}
		total *= s
	}
	if len(mj.Core.Data) != total {
		return fmt.Errorf("tucker: core has %d elements for shape %v (want %d)", len(mj.Core.Data), mj.Core.Shape, total)
	}
	if err := finite(mj.Core.Data, "core"); err != nil {
		return err
	}
	factors := make([]*mat.Dense, len(mj.Factors))
	for n, fj := range mj.Factors {
		if fj.Rows <= 0 || fj.Rows > maxWireElems || fj.Cols <= 0 || fj.Cols > maxWireElems ||
			fj.Rows > maxWireElems/fj.Cols {
			return fmt.Errorf("tucker: implausible factor %d shape %d×%d", n, fj.Rows, fj.Cols)
		}
		if len(fj.Data) != fj.Rows*fj.Cols {
			return fmt.Errorf("tucker: factor %d has %d elements for shape %d×%d", n, len(fj.Data), fj.Rows, fj.Cols)
		}
		if err := finite(fj.Data, fmt.Sprintf("factor %d", n)); err != nil {
			return err
		}
		factors[n] = mat.NewFromData(fj.Rows, fj.Cols, fj.Data)
	}
	read := Model{Core: tensor.NewFromData(mj.Core.Data, mj.Core.Shape...), Factors: factors}
	if err := read.Validate(nil); err != nil {
		return fmt.Errorf("tucker: deserialized model inconsistent: %w", err)
	}
	*m = read
	return nil
}

func finite(data []float64, what string) error {
	for i, v := range data {
		if v != v || math.IsInf(v, 0) {
			return fmt.Errorf("tucker: %s element %d is %v: %w", what, i, v, dterr.ErrNonFiniteInput)
		}
	}
	return nil
}
