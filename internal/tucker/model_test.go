package tucker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// randomModel builds a Tucker model with orthonormal factors for the given
// input shape and uniform rank.
func randomModel(rng *rand.Rand, shape []int, j int) *Model {
	ranks := make([]int, len(shape))
	factors := make([]*mat.Dense, len(shape))
	for n, s := range shape {
		ranks[n] = j
		factors[n] = mat.RandOrthonormal(s, j, rng)
	}
	return &Model{Core: tensor.RandN(rng, ranks...), Factors: factors}
}

func TestValidateAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(rng, []int{6, 5, 4}, 2)
	if err := m.Validate([]int{6, 5, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomModel(rng, []int{6, 5, 4}, 2)
	if err := m.Validate([]int{6, 5, 9}); err == nil {
		t.Fatal("wrong input shape accepted")
	}
	bad := &Model{Core: m.Core, Factors: m.Factors[:2]}
	if err := bad.Validate(nil); err == nil {
		t.Fatal("missing factor accepted")
	}
	if err := (&Model{}).Validate(nil); err == nil {
		t.Fatal("nil core accepted")
	}
}

func TestReconstructMatchesModeProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomModel(rng, []int{5, 4, 3}, 2)
	want := m.Core.ModeProduct(m.Factors[0], 0).ModeProduct(m.Factors[1], 1).ModeProduct(m.Factors[2], 2)
	if !m.Reconstruct().EqualApprox(want, 1e-12) {
		t.Fatal("Reconstruct mismatch")
	}
}

func TestRelErrorZeroForExactModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomModel(rng, []int{6, 5, 4}, 3)
	x := m.Reconstruct()
	if rel := m.RelError(x); rel > 1e-10 {
		t.Fatalf("RelError = %g for exact model", rel)
	}
	if fit := m.Fit(x); fit < 1-1e-10 {
		t.Fatalf("Fit = %g for exact model", fit)
	}
}

func TestRelErrorMatchesDenseResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomModel(rng, []int{6, 5, 4}, 2)
	x := tensor.RandN(rng, 6, 5, 4)
	want := x.Sub(m.Reconstruct()).Norm() / x.Norm()
	got := m.RelError(x)
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("RelError = %g, dense residual = %g", got, want)
	}
}

func TestRelErrorOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomModel(rng, []int{4, 3, 3, 2}, 2)
	x := tensor.RandN(rng, 4, 3, 3, 2)
	want := x.Sub(m.Reconstruct()).Norm() / x.Norm()
	got := m.RelError(x)
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("order-4 RelError = %g, want %g", got, want)
	}
}

func TestRelErrorMatrixModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomModel(rng, []int{8, 6}, 2)
	x := tensor.RandN(rng, 8, 6)
	want := x.Sub(m.Reconstruct()).Norm() / x.Norm()
	if got := m.RelError(x); math.Abs(got-want) > 1e-10 {
		t.Fatalf("matrix RelError = %g, want %g", got, want)
	}
}

func TestStorageFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomModel(rng, []int{10, 8, 6}, 2)
	want := 2*2*2 + 10*2 + 8*2 + 6*2
	if got := m.StorageFloats(); got != want {
		t.Fatalf("StorageFloats = %d, want %d", got, want)
	}
}

func TestRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomModel(rng, []int{5, 5, 5}, 3)
	for _, r := range m.Ranks() {
		if r != 3 {
			t.Fatalf("Ranks = %v", m.Ranks())
		}
	}
}

func TestFitFromCore(t *testing.T) {
	if got := FitFromCore(0, 0); got != 1 {
		t.Fatalf("FitFromCore(0,0) = %g", got)
	}
	// ‖X‖=5, ‖G‖=4 → residual 3, fit 1-3/5.
	if got := FitFromCore(5, 4); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("FitFromCore(5,4) = %g", got)
	}
	// Core norm slightly above X norm from roundoff must clamp to fit 1.
	if got := FitFromCore(5, 5.0000001); got != 1 {
		t.Fatalf("FitFromCore clamp = %g", got)
	}
}

func TestFitFromCoreMatchesExactForProjection(t *testing.T) {
	// When G = X ×ₙ Aᵀ with orthonormal A, the identity is exact.
	rng := rand.New(rand.NewSource(10))
	x := tensor.RandN(rng, 6, 5, 4)
	factors := []*mat.Dense{
		mat.RandOrthonormal(6, 2, rng),
		mat.RandOrthonormal(5, 2, rng),
		mat.RandOrthonormal(4, 2, rng),
	}
	core := x.TTMAllTransposed(factors, -1)
	m := &Model{Core: core, Factors: factors}
	exact := m.RelError(x)
	estimate := 1 - FitFromCore(x.Norm(), core.Norm())
	if math.Abs(exact-estimate) > 1e-10 {
		t.Fatalf("projection identity violated: %g vs %g", exact, estimate)
	}
}
