package tucker

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dterr"
	"repro/internal/mat"
	"repro/internal/tensor"
)

func testModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	core := tensor.RandN(rng, 3, 4, 2)
	return &Model{
		Core: core,
		Factors: []*mat.Dense{
			mat.RandOrthonormal(10, 3, rng),
			mat.RandOrthonormal(8, 4, rng),
			mat.RandOrthonormal(6, 2, rng),
		},
	}
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func modelsBitIdentical(t *testing.T, a, b *Model) {
	t.Helper()
	if !bitEqual(a.Core.Data(), b.Core.Data()) {
		t.Fatal("core differs after round trip")
	}
	if len(a.Factors) != len(b.Factors) {
		t.Fatalf("factor count %d vs %d", len(a.Factors), len(b.Factors))
	}
	for n := range a.Factors {
		if a.Factors[n].Rows() != b.Factors[n].Rows() || a.Factors[n].Cols() != b.Factors[n].Cols() {
			t.Fatalf("factor %d shape differs", n)
		}
		if !bitEqual(a.Factors[n].Data(), b.Factors[n].Data()) {
			t.Fatalf("factor %d differs after round trip", n)
		}
	}
}

func TestModelBinaryRoundTrip(t *testing.T) {
	orig := testModel(1)
	var buf bytes.Buffer
	wn, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wn != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", wn, buf.Len())
	}
	got, err := ReadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	modelsBitIdentical(t, orig, got)
}

func TestModelReadStopsAtModelEnd(t *testing.T) {
	// A model embedded in a larger stream must leave trailing bytes unread —
	// the Decomposition wire format depends on it.
	orig := testModel(2)
	var buf bytes.Buffer
	wn, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	trailer := []byte("TRAILER")
	buf.Write(trailer)
	r := bytes.NewReader(buf.Bytes())
	var m Model
	rn, err := m.ReadFrom(r)
	if err != nil {
		t.Fatal(err)
	}
	if rn != wn {
		t.Fatalf("ReadFrom consumed %d bytes, model is %d", rn, wn)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, trailer) {
		t.Fatalf("trailer corrupted: %q", rest)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	orig := testModel(3)
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Model
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	modelsBitIdentical(t, orig, &got)
}

func TestModelCorruptHeaders(t *testing.T) {
	orig := testModel(4)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		if _, err := ReadModel(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: corrupt model accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("zero order", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:], 0)
		return b
	})
	corrupt("huge order", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:], 1<<20)
		return b
	})
	corrupt("overflowing core dim", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], 1<<62)
		return b
	})
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("nan core element", func(b []byte) []byte {
		// First core element sits after magic+order+3 shape words.
		off := 4 + 4 + 3*8
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(math.NaN()))
		return b
	})
	// Factor cols inconsistent with core mode: flip the first factor's cols
	// word, which sits right after the core block.
	corrupt("factor/core mismatch", func(b []byte) []byte {
		off := 4 + 4 + 3*8 + 3*4*2*8 + 8 // header + core data + rows word
		binary.LittleEndian.PutUint64(b[off:], 5)
		return b
	})

	// Non-finite data must name ErrNonFiniteInput, like tensor.ReadFrom.
	b := append([]byte(nil), good...)
	off := 4 + 4 + 3*8
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(math.Inf(1)))
	_, err := ReadModel(bytes.NewReader(b))
	if !errors.Is(err, dterr.ErrNonFiniteInput) {
		t.Fatalf("inf element error %v does not wrap ErrNonFiniteInput", err)
	}
}

func TestModelJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"shape/data mismatch": `{"core":{"shape":[2,2],"data":[1,2,3]},"factors":[]}`,
		"zero dim":            `{"core":{"shape":[0,2],"data":[]},"factors":[]}`,
		"factor mismatch": `{"core":{"shape":[2],"data":[1,2]},` +
			`"factors":[{"rows":3,"cols":1,"data":[1,2,3]}]}`,
		"ragged factor": `{"core":{"shape":[2],"data":[1,2]},` +
			`"factors":[{"rows":3,"cols":2,"data":[1,2,3]}]}`,
	}
	for name, js := range cases {
		var m Model
		if err := json.Unmarshal([]byte(js), &m); err == nil {
			t.Fatalf("%s: malformed model JSON accepted", name)
		}
	}
}

func TestModelWriteToReportsShortWrite(t *testing.T) {
	orig := testModel(5)
	if _, err := orig.WriteTo(shortWriter{}); err == nil {
		t.Fatal("short write went unreported")
	} else if !errors.Is(err, io.ErrShortWrite) && !strings.Contains(err.Error(), "short") {
		t.Fatalf("unexpected short-write error: %v", err)
	}
}

// shortWriter claims success while accepting only half of every buffer —
// the io.Writer contract violation the CountingWriter guards against.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) { return len(p) / 2, nil }

func TestModelWriteToRejectsInvalid(t *testing.T) {
	m := &Model{} // nil core
	if _, err := m.WriteTo(io.Discard); err == nil {
		t.Fatal("nil-core model serialized")
	}
	if _, err := json.Marshal(m); err == nil {
		t.Fatal("nil-core model marshalled")
	}
}
