// Package tucker defines the Tucker decomposition model shared by the core
// D-Tucker algorithm and every baseline: a small dense core tensor plus one
// column-orthonormal factor matrix per mode, together with reconstruction
// and error metrics.
package tucker

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Model is a Tucker decomposition X ≈ Core ×₁ Factors[0] … ×_N Factors[N-1].
type Model struct {
	Core    *tensor.Dense // J1×…×JN
	Factors []*mat.Dense  // Factors[n] is I_n×J_n
}

// Validate checks the internal consistency of the model against an input
// shape (pass nil to skip the shape check).
func (m *Model) Validate(inputShape []int) error {
	if m.Core == nil {
		return fmt.Errorf("tucker: model has nil core")
	}
	if m.Core.Order() != len(m.Factors) {
		return fmt.Errorf("tucker: core order %d but %d factors", m.Core.Order(), len(m.Factors))
	}
	for n, f := range m.Factors {
		if f == nil {
			return fmt.Errorf("tucker: factor %d is nil", n)
		}
		if f.Cols() != m.Core.Dim(n) {
			return fmt.Errorf("tucker: factor %d has %d columns, core mode is %d", n, f.Cols(), m.Core.Dim(n))
		}
		if inputShape != nil && f.Rows() != inputShape[n] {
			return fmt.Errorf("tucker: factor %d has %d rows, input mode is %d", n, f.Rows(), inputShape[n])
		}
	}
	return nil
}

// Ranks returns the core dimensionalities.
func (m *Model) Ranks() []int { return m.Core.Shape() }

// Reconstruct materializes the full approximation
// Core ×₁ A(1) … ×_N A(N). Use only when the result fits in memory.
func (m *Model) Reconstruct() *tensor.Dense {
	out := m.Core
	for n, f := range m.Factors {
		out = out.ModeProduct(f, n)
	}
	return out
}

// StorageFloats returns the number of float64 values the model stores —
// the space-cost unit used throughout the experiments.
func (m *Model) StorageFloats() int {
	total := m.Core.Len()
	for _, f := range m.Factors {
		total += f.Rows() * f.Cols()
	}
	return total
}

// RelError returns the relative reconstruction error
// ‖X − X̂‖_F / ‖X‖_F against the original tensor.
//
// The reconstruction is evaluated slice by slice so peak memory stays at
// one I1×I2 slice rather than a full second copy of X.
func (m *Model) RelError(x *tensor.Dense) float64 {
	if x.Order() != len(m.Factors) {
		panic(fmt.Sprintf("tucker: RelError input order %d vs model order %d", x.Order(), len(m.Factors)))
	}
	if x.Order() < 2 {
		panic("tucker: RelError requires order ≥ 2")
	}
	for n, f := range m.Factors {
		if f.Rows() != x.Dim(n) {
			panic(fmt.Sprintf("tucker: RelError input mode %d has dimensionality %d but factor has %d rows", n, x.Dim(n), f.Rows()))
		}
	}
	normX := x.Norm()
	if normX == 0 {
		return 0
	}

	a1, a2 := m.Factors[0], m.Factors[1]
	j1, j2 := a1.Cols(), a2.Cols()
	restRanks := 1
	for _, f := range m.Factors[2:] {
		restRanks *= f.Cols()
	}
	// coreMat[c] is the J1×J2 core slab for flattened trailing index c
	// (mode-3 fastest, matching tensor slice enumeration).
	coreMats := coreSlabs(m.Core, j1, j2, restRanks)

	var resid2 float64
	ns := x.NumSlices()
	w := make([]float64, restRanks)
	rows := make([][]float64, len(m.Factors)-2)
	for l := 0; l < ns; l++ {
		idx := x.SliceIndex(l)
		// Kronecker row over trailing factors, mode-3 fastest.
		for k := range rows {
			rows[len(rows)-1-k] = m.Factors[2+k].Row(idx[k])
		}
		mat.KronRow(w, rows...)
		// M = Σ_c w[c]·coreMats[c], the J1×J2 projected slab.
		slab := mat.New(j1, j2)
		for c, wc := range w {
			if wc != 0 {
				slab.AddScaledInPlace(wc, coreMats[c])
			}
		}
		approx := mat.Mul(mat.Mul(a1, slab), a2.T())
		orig := x.FrontalSlice(l)
		d := orig.Sub(approx).Norm()
		resid2 += d * d
	}
	return math.Sqrt(resid2) / normX
}

// Fit returns 1 − RelError(x), the fraction of the input explained.
func (m *Model) Fit(x *tensor.Dense) float64 { return 1 - m.RelError(x) }

// coreSlabs splits the core into its restRanks J1×J2 frontal slabs.
func coreSlabs(core *tensor.Dense, j1, j2, restRanks int) []*mat.Dense {
	out := make([]*mat.Dense, restRanks)
	for c := 0; c < restRanks; c++ {
		out[c] = core.FrontalSlice(c)
	}
	_ = j1
	_ = j2
	return out
}

// CoreNorm returns ‖Core‖_F, used for the cheap fit proxy
// ‖X−X̂‖² ≈ ‖X‖² − ‖G‖² valid when the factors are orthonormal and the
// core is the projection of X.
func (m *Model) CoreNorm() float64 { return m.Core.Norm() }

// FitFromCore computes the standard ALS fit estimate
// 1 − sqrt(max(0, ‖X‖² − ‖G‖²))/‖X‖ from precomputed norms, avoiding any
// pass over the raw tensor.
func FitFromCore(normX, normCore float64) float64 {
	if normX == 0 {
		return 1
	}
	resid2 := normX*normX - normCore*normCore
	if resid2 < 0 {
		resid2 = 0
	}
	return 1 - math.Sqrt(resid2)/normX
}
