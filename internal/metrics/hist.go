package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistID names one of the fixed kernel-latency histograms. The set is fixed
// at compile time so observation is a direct array index — no registry
// lookup, no lock.
type HistID int

const (
	// HistSliceSVD is the end-to-end latency of one frontal-slice
	// compression in the approximation phase (randomized or exact).
	HistSliceSVD HistID = iota
	// HistMatmul is the latency of one dense multiply kernel
	// (Mul/MulInto/MulAddInto, MulTA, MulTB, Gram).
	HistMatmul
	// HistRandSVDSketch is the latency of a randomized SVD's stage A: the
	// Gaussian range finder including power iterations.
	HistRandSVDSketch
	// HistRandSVDProject is the latency of a randomized SVD's stage B: the
	// projected dense SVD.
	HistRandSVDProject
	// HistPoolWait is the time a pool task spent queued — from region
	// submission until the task began executing. The tail of this
	// distribution is the scheduling gap the iteration phase pays per
	// parallel region.
	HistPoolWait
	// HistJobQueueWait is the time a dtuckerd job spent in the admission
	// queue — from accepted submission until a runner picked it up. Its
	// tail is the latency cost of a saturated queue.
	HistJobQueueWait
	// HistJobRun is the end-to-end execution latency of one dtuckerd job
	// (cache hits are not observed — they never execute).
	HistJobRun
	// HistJobQueueWaitInteractive is HistJobQueueWait restricted to the
	// interactive lane. Interactive jobs preempt batch in dispatch order, so
	// under overload this distribution should stay tight while the batch
	// lane's grows.
	HistJobQueueWaitInteractive
	// HistJobQueueWaitBatch is HistJobQueueWait restricted to the batch
	// lane — the preempted side of the priority split.
	HistJobQueueWaitBatch
	// HistJobCoalesceWait is the time a coalesced follower waited from its
	// submission until its leader finished. It bounds the latency a client
	// pays for riding an identical in-flight job instead of executing.
	HistJobCoalesceWait
	// HistJobShedHeadAge is the age of the oldest queued job at the moment a
	// submission was shed for queue capacity. A growing head age alongside
	// sheds means the queue is saturated by slow work, not a burst.
	HistJobShedHeadAge
	// HistSliceSVDRand/Exact/Gram split HistSliceSVD by the compression
	// kernel that ran, so per-kernel latency is visible when SliceKernel
	// "auto" mixes kernels within one decomposition.
	HistSliceSVDRand
	HistSliceSVDExact
	HistSliceSVDGram
	// HistJournalAppend is the latency of one durable journal append
	// (serialize, write, fsync). Its tail bounds the admission latency cost
	// of running dtuckerd with -data-dir.
	HistJournalAppend
	// HistCheckpointWrite is the latency of one sweep-boundary checkpoint
	// (serialize factors+core, atomic tmp+rename spill, journal record) —
	// the per-sweep price of crash-safe iteration.
	HistCheckpointWrite
	// HistRangeNodeBuild is the latency of building or merging one range-index
	// node summary (exact truncated SVD of a span's stacked slice factors).
	HistRangeNodeBuild
	// HistRangeStitch* split stitched range-query latency by the number of
	// segment-tree nodes the query decomposed into (≤2, ≤4, >4), so the
	// O(log T) stitch-count scaling is visible directly in /metricz.
	HistRangeStitchLe2
	HistRangeStitchLe4
	HistRangeStitchGt4
	// HistRangeFallback is the latency of range queries that bypassed the
	// stitch path (span below the size threshold, or stitch quality below
	// the configured fit floor) and ran a direct DecomposeRange.
	HistRangeFallback
	numHistIDs
)

// HistRangeStitch returns the stitched-range latency histogram for a query
// that decomposed into nodes segment-tree nodes.
func HistRangeStitch(nodes int) HistID {
	switch {
	case nodes <= 2:
		return HistRangeStitchLe2
	case nodes <= 4:
		return HistRangeStitchLe4
	default:
		return HistRangeStitchGt4
	}
}

// String returns the histogram's presentation name.
func (h HistID) String() string {
	switch h {
	case HistSliceSVD:
		return "slice-svd"
	case HistMatmul:
		return "matmul"
	case HistRandSVDSketch:
		return "randsvd-sketch"
	case HistRandSVDProject:
		return "randsvd-project"
	case HistPoolWait:
		return "pool-wait"
	case HistJobQueueWait:
		return "job-queue-wait"
	case HistJobRun:
		return "job-run"
	case HistJobQueueWaitInteractive:
		return "job-wait-interactive"
	case HistJobQueueWaitBatch:
		return "job-wait-batch"
	case HistJobCoalesceWait:
		return "job-coalesce-wait"
	case HistJobShedHeadAge:
		return "job-shed-head-age"
	case HistSliceSVDRand:
		return "slice-svd-randsvd"
	case HistSliceSVDExact:
		return "slice-svd-exact"
	case HistSliceSVDGram:
		return "slice-svd-gram"
	case HistJournalAppend:
		return "journal-append"
	case HistCheckpointWrite:
		return "checkpoint-write"
	case HistRangeNodeBuild:
		return "range-node-build"
	case HistRangeStitchLe2:
		return "range-stitch-le2"
	case HistRangeStitchLe4:
		return "range-stitch-le4"
	case HistRangeStitchGt4:
		return "range-stitch-gt4"
	case HistRangeFallback:
		return "range-fallback"
	}
	return "hist(?)"
}

// histBuckets is the number of power-of-two latency buckets: bucket 0 holds
// observations below 1ns (and exact zeros), bucket i ≥ 1 holds
// [2^(i-1), 2^i) nanoseconds, so 63 buckets span past 290 years — every
// possible time.Duration lands somewhere without clamping error.
const histBuckets = 64

// hist is one fixed-bucket log₂-scale latency histogram. All fields are
// atomics, so Observe is lock-free and safe from any goroutine (pool
// workers observe concurrently).
type hist struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64 // total observed nanoseconds
}

var histograms [numHistIDs]hist

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	ns := int64(d)
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) // 1 + floor(log2 ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency into the histogram. Disabled instrumentation
// (the default) costs one atomic load.
func Observe(id HistID, d time.Duration) {
	if !enabled.Load() || id < 0 || id >= numHistIDs {
		return
	}
	h := &histograms[id]
	h.counts[histBucket(d)].Add(1)
	h.sum.Add(int64(d))
}

// HistStart returns the current time when instrumentation is enabled and
// the zero time otherwise — the bracket opener of the two-call observation
// pattern the kernels use:
//
//	t0 := metrics.HistStart()
//	… work …
//	metrics.ObserveSince(metrics.HistMatmul, t0)
//
// Both calls are allocation-free on the disabled path.
func HistStart() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed time since t0, unless t0 is the zero
// time (instrumentation was off when the bracket opened).
func ObserveSince(id HistID, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	Observe(id, time.Since(t0))
}

// HistCounts returns histogram id's raw per-bucket observation counts
// (length histBuckets), loaded atomically. Exposition renderers (the
// Prometheus text writer) turn these into cumulative buckets; bucket b's
// upper edge is HistBucketUpper(b).
func HistCounts(id HistID) []int64 {
	counts := make([]int64, histBuckets)
	if id < 0 || id >= numHistIDs {
		return counts
	}
	h := &histograms[id]
	for b := range counts {
		counts[b] = h.counts[b].Load()
	}
	return counts
}

// HistSum returns histogram id's total observed nanoseconds.
func HistSum(id HistID) int64 {
	if id < 0 || id >= numHistIDs {
		return 0
	}
	return histograms[id].sum.Load()
}

// HistBucketUpper returns the exclusive upper latency bound of bucket b —
// the le edge Prometheus exposition uses for that bucket.
func HistBucketUpper(b int) time.Duration { return bucketUpper(b) }

// ResetHists zeroes every histogram.
func ResetHists() {
	for i := range histograms {
		h := &histograms[i]
		for b := range h.counts {
			h.counts[b].Store(0)
		}
		h.sum.Store(0)
	}
}

// HistSnapshot is the summary of one histogram: observation count, total
// time, and interpolated quantiles. Quantile computation is a pure function
// of the bucket counts, so identical counts — which the owner-computes
// parallel sites guarantee across worker settings — give identical
// quantile values even though the underlying latencies vary run to run.
type HistSnapshot struct {
	Name     string        `json:"name"`
	Count    int64         `json:"count"`
	Sum      time.Duration `json:"sum_ns"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
	MaxUpper time.Duration `json:"max_upper_ns"` // upper bound of the highest non-empty bucket
}

// Mean returns the average observed latency (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// SnapshotHist summarizes one histogram.
func SnapshotHist(id HistID) HistSnapshot {
	snap := HistSnapshot{Name: id.String()}
	if id < 0 || id >= numHistIDs {
		return snap
	}
	h := &histograms[id]
	var counts [histBuckets]int64
	for b := range counts {
		counts[b] = h.counts[b].Load()
		snap.Count += counts[b]
		if counts[b] > 0 {
			snap.MaxUpper = bucketUpper(b)
		}
	}
	snap.Sum = time.Duration(h.sum.Load())
	snap.P50 = quantileFromCounts(counts[:], 0.50)
	snap.P95 = quantileFromCounts(counts[:], 0.95)
	snap.P99 = quantileFromCounts(counts[:], 0.99)
	return snap
}

// Histograms returns a snapshot of every histogram that has at least one
// observation, in HistID order.
func Histograms() []HistSnapshot {
	var out []HistSnapshot
	for id := HistID(0); id < numHistIDs; id++ {
		if s := SnapshotHist(id); s.Count > 0 {
			out = append(out, s)
		}
	}
	return out
}

// bucketLower and bucketUpper are bucket b's latency bounds [lower, upper).
func bucketLower(b int) time.Duration {
	if b <= 0 {
		return 0
	}
	return time.Duration(int64(1) << (b - 1))
}

func bucketUpper(b int) time.Duration {
	if b <= 0 {
		return 1
	}
	if b >= 63 {
		return time.Duration(int64(1)<<62 + (int64(1)<<62 - 1)) // max int64
	}
	return time.Duration(int64(1) << b)
}

// quantileFromCounts returns the q-quantile estimated by linear
// interpolation inside the bucket holding the q·count-th observation — a
// deterministic pure function of the counts.
func quantileFromCounts(counts []int64, q float64) time.Duration {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo, hi := bucketLower(b), bucketUpper(b)
			frac := (target - float64(cum)) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	// Rounding pushed the target past the last bucket; report its upper edge.
	for b := len(counts) - 1; b >= 0; b-- {
		if counts[b] > 0 {
			return bucketUpper(b)
		}
	}
	return 0
}
