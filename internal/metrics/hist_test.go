package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withHists runs fn with instrumentation enabled and the histograms reset,
// restoring both afterwards.
func withHists(t *testing.T, fn func()) {
	t.Helper()
	prev := SetEnabled(true)
	ResetHists()
	defer func() {
		SetEnabled(prev)
		ResetHists()
	}()
	fn()
}

func TestHistBucketBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {-time.Second, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11},
		{1 << 62, 63},
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bounds nest: lower < upper, upper(b) == lower(b+1).
	for b := 0; b < histBuckets-1; b++ {
		if bucketLower(b) >= bucketUpper(b) {
			t.Fatalf("bucket %d: lower %d >= upper %d", b, bucketLower(b), bucketUpper(b))
		}
		if bucketUpper(b) != bucketLower(b+1) {
			t.Fatalf("bucket %d: upper %d != next lower %d", b, bucketUpper(b), bucketLower(b+1))
		}
	}
}

func TestObserveAndSnapshot(t *testing.T) {
	withHists(t, func() {
		for i := 0; i < 90; i++ {
			Observe(HistMatmul, time.Microsecond) // bucket of 1000ns
		}
		for i := 0; i < 10; i++ {
			Observe(HistMatmul, time.Millisecond)
		}
		s := SnapshotHist(HistMatmul)
		if s.Count != 100 {
			t.Fatalf("count = %d, want 100", s.Count)
		}
		if want := 90*time.Microsecond + 10*time.Millisecond; s.Sum != want {
			t.Fatalf("sum = %v, want %v", s.Sum, want)
		}
		// p50 lands in the microsecond bucket, p99 in the millisecond bucket.
		if s.P50 < 512 || s.P50 > 1024 {
			t.Fatalf("p50 = %v, want within (512ns, 1024ns]", s.P50)
		}
		if s.P99 < 524288 || s.P99 > 1<<20 {
			t.Fatalf("p99 = %v, want within the millisecond bucket", s.P99)
		}
		if s.MaxUpper != 1<<20 {
			t.Fatalf("maxUpper = %v, want %v", s.MaxUpper, time.Duration(1<<20))
		}
		if mean := s.Mean(); mean != s.Sum/100 {
			t.Fatalf("mean = %v", mean)
		}
	})
}

// TestQuantilesPureFunctionOfCounts pins the determinism contract: quantiles
// depend only on bucket counts, so two histograms filled with different
// latencies that land in the same buckets report identical quantiles.
func TestQuantilesPureFunctionOfCounts(t *testing.T) {
	fill := func(durs []time.Duration) HistSnapshot {
		ResetHists()
		for _, d := range durs {
			Observe(HistSliceSVD, d)
		}
		return SnapshotHist(HistSliceSVD)
	}
	withHists(t, func() {
		a := fill([]time.Duration{700, 800, 900, 1000, 70000, 80000})
		b := fill([]time.Duration{513, 600, 1023, 800, 65537, 99999})
		if a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 {
			t.Fatalf("same buckets, different quantiles: %+v vs %+v", a, b)
		}
	})
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty [histBuckets]int64
	if q := quantileFromCounts(empty[:], 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}
	var one [histBuckets]int64
	one[11] = 1 // the 1024..2048ns bucket
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := quantileFromCounts(one[:], q)
		if got <= bucketLower(11) || got > bucketUpper(11) {
			t.Fatalf("single-sample q%v = %v outside its bucket", q, got)
		}
	}
}

func TestHistDisabledZeroAllocAndNoop(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	ResetHists()
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := HistStart()
		Observe(HistMatmul, time.Millisecond)
		ObserveSince(HistSliceSVD, t0)
	})
	if allocs != 0 {
		t.Fatalf("disabled histograms allocated %v times per run", allocs)
	}
	if s := SnapshotHist(HistMatmul); s.Count != 0 {
		t.Fatalf("disabled Observe recorded: %+v", s)
	}
	if hs := Histograms(); hs != nil {
		t.Fatalf("Histograms() on empty set = %v, want nil", hs)
	}
}

func TestObserveConcurrent(t *testing.T) {
	withHists(t, func() {
		var wg sync.WaitGroup
		const workers, per = 8, 500
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					Observe(HistPoolWait, time.Microsecond)
				}
			}()
		}
		wg.Wait()
		if s := SnapshotHist(HistPoolWait); s.Count != workers*per {
			t.Fatalf("count = %d, want %d", s.Count, workers*per)
		}
	})
}

func TestReportCarriesSchemaAndHists(t *testing.T) {
	withHists(t, func() {
		Reset()
		defer Reset()
		c := &Collector{}
		c.StartPhase(PhaseIter)
		Observe(HistMatmul, time.Microsecond)
		c.EndPhase(PhaseIter)

		rep := c.Report()
		if rep.Schema != ReportSchema {
			t.Fatalf("report schema = %d, want %d", rep.Schema, ReportSchema)
		}
		if len(rep.Hists) != 1 || rep.Hists[0].Name != "matmul" {
			t.Fatalf("report hists = %+v", rep.Hists)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(raw), `"schema":1`) {
			t.Fatalf("marshalled report lacks schema field: %s", raw)
		}
		if !strings.Contains(string(raw), `"histograms"`) {
			t.Fatalf("marshalled report lacks histograms: %s", raw)
		}
		if tbl := c.Table(); !strings.Contains(tbl, "matmul") || !strings.Contains(tbl, "p99") {
			t.Fatalf("table lacks histogram summary:\n%s", tbl)
		}
	})
}
