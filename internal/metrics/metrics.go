// Package metrics is the observability substrate for the D-Tucker
// reproduction: process-global, allocation-free kernel counters (matmul
// flops, QR/SVD/randomized-SVD calls, slice compressions) plus a per-run
// Collector that brackets the algorithm's phases and records wall time,
// counter deltas, memory samples, and the iteration-level fit trajectory.
//
// The package splits responsibility in two:
//
//   - Global counters (Count*, Snapshot, Reset) live behind a single
//     atomic.Bool. When disabled — the default — every Count* call is one
//     atomic load and an early return: no allocation, no lock, no
//     observable cost on the kernel hot paths. The low-level packages
//     (internal/mat, internal/randsvd) call these unconditionally.
//   - Collector attributes counter activity to algorithm phases
//     (approximation / initialization / iteration) by snapshotting the
//     global counters at phase boundaries. Core algorithms receive an
//     optional *Collector through core.Options; a nil Collector is valid
//     everywhere and every method on it is a nil-safe no-op.
//
// Because the counters are process-global, concurrent decompositions share
// them; per-phase deltas are only meaningful when one instrumented run is
// active at a time, which is the CLI and benchmark-harness usage pattern.
package metrics

import "sync/atomic"

// Counters is a snapshot of the kernel-level activity counters. All fields
// are totals since the last Reset (or process start).
type Counters struct {
	// MatmulCalls and MatmulFlops count dense multiply kernels
	// (Mul/MulInto/MulAddInto, MulTA, MulTB, Gram) and their floating-point
	// operation estimate (2·m·k·n per general multiply, m·n² for Gram).
	MatmulCalls int64 `json:"matmul_calls"`
	MatmulFlops int64 `json:"matmul_flops"`
	// QRCalls and QRFlops count Householder QR factorizations and the
	// standard 2·n²·(m − n/3) flop estimate.
	QRCalls int64 `json:"qr_calls"`
	QRFlops int64 `json:"qr_flops"`
	// SVDCalls counts exact (dense) SVDs, whichever internal path they take.
	SVDCalls int64 `json:"svd_calls"`
	// RandSVDCalls counts randomized (Halko et al.) SVD invocations.
	RandSVDCalls int64 `json:"randsvd_calls"`
	// RandSVDRetries counts randomized SVDs re-run with fresh random draws
	// after a numerical breakdown (non-finite sketch, zero-norm sketch
	// column, non-converging projected SVD).
	RandSVDRetries int64 `json:"randsvd_retries"`
	// RandSVDFallbacks counts randomized SVDs that, after the retry also
	// broke down, completed via the deterministic dense-SVD fallback.
	RandSVDFallbacks int64 `json:"randsvd_fallbacks"`
	// SliceSVDs counts frontal-slice compressions in D-Tucker's
	// approximation phase (each is one randomized or exact SVD of an
	// I1×I2 slice).
	SliceSVDs int64 `json:"slice_svds"`
	// SliceKernelRand/Exact/Gram break SliceSVDs down by the compression
	// kernel that ran (randomized SVD, exact dense SVD, or
	// Gram-eigendecomposition), making per-slice kernel selection
	// observable: under SliceKernel "auto" the split shows what the cost
	// model chose.
	SliceKernelRand  int64 `json:"slice_kernel_randsvd"`
	SliceKernelExact int64 `json:"slice_kernel_exact"`
	SliceKernelGram  int64 `json:"slice_kernel_gram"`
	// RangeNodeBuilds/RangeNodeHits count segment-tree node summaries built
	// (including merges) versus served from the range index's node cache;
	// RangeStitches counts range queries answered by stitching node
	// summaries, RangeFallbacks those that ran a direct DecomposeRange
	// instead (span below the size threshold or stitch quality below the
	// fit floor).
	RangeNodeBuilds int64 `json:"range_node_builds"`
	RangeNodeHits   int64 `json:"range_node_hits"`
	RangeStitches   int64 `json:"range_stitches"`
	RangeFallbacks  int64 `json:"range_fallbacks"`
}

// Sub returns the component-wise difference c − o.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		MatmulCalls:      c.MatmulCalls - o.MatmulCalls,
		MatmulFlops:      c.MatmulFlops - o.MatmulFlops,
		QRCalls:          c.QRCalls - o.QRCalls,
		QRFlops:          c.QRFlops - o.QRFlops,
		SVDCalls:         c.SVDCalls - o.SVDCalls,
		RandSVDCalls:     c.RandSVDCalls - o.RandSVDCalls,
		RandSVDRetries:   c.RandSVDRetries - o.RandSVDRetries,
		RandSVDFallbacks: c.RandSVDFallbacks - o.RandSVDFallbacks,
		SliceSVDs:        c.SliceSVDs - o.SliceSVDs,
		SliceKernelRand:  c.SliceKernelRand - o.SliceKernelRand,
		SliceKernelExact: c.SliceKernelExact - o.SliceKernelExact,
		SliceKernelGram:  c.SliceKernelGram - o.SliceKernelGram,
		RangeNodeBuilds:  c.RangeNodeBuilds - o.RangeNodeBuilds,
		RangeNodeHits:    c.RangeNodeHits - o.RangeNodeHits,
		RangeStitches:    c.RangeStitches - o.RangeStitches,
		RangeFallbacks:   c.RangeFallbacks - o.RangeFallbacks,
	}
}

// Add returns the component-wise sum c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		MatmulCalls:      c.MatmulCalls + o.MatmulCalls,
		MatmulFlops:      c.MatmulFlops + o.MatmulFlops,
		QRCalls:          c.QRCalls + o.QRCalls,
		QRFlops:          c.QRFlops + o.QRFlops,
		SVDCalls:         c.SVDCalls + o.SVDCalls,
		RandSVDCalls:     c.RandSVDCalls + o.RandSVDCalls,
		RandSVDRetries:   c.RandSVDRetries + o.RandSVDRetries,
		RandSVDFallbacks: c.RandSVDFallbacks + o.RandSVDFallbacks,
		SliceSVDs:        c.SliceSVDs + o.SliceSVDs,
		SliceKernelRand:  c.SliceKernelRand + o.SliceKernelRand,
		SliceKernelExact: c.SliceKernelExact + o.SliceKernelExact,
		SliceKernelGram:  c.SliceKernelGram + o.SliceKernelGram,
		RangeNodeBuilds:  c.RangeNodeBuilds + o.RangeNodeBuilds,
		RangeNodeHits:    c.RangeNodeHits + o.RangeNodeHits,
		RangeStitches:    c.RangeStitches + o.RangeStitches,
		RangeFallbacks:   c.RangeFallbacks + o.RangeFallbacks,
	}
}

var enabled atomic.Bool

var global struct {
	matmulCalls      atomic.Int64
	matmulFlops      atomic.Int64
	qrCalls          atomic.Int64
	qrFlops          atomic.Int64
	svdCalls         atomic.Int64
	randSVDCalls     atomic.Int64
	randSVDRetries   atomic.Int64
	randSVDFallbacks atomic.Int64
	sliceSVDs        atomic.Int64
	sliceKernelRand  atomic.Int64
	sliceKernelExact atomic.Int64
	sliceKernelGram  atomic.Int64
	rangeNodeBuilds  atomic.Int64
	rangeNodeHits    atomic.Int64
	rangeStitches    atomic.Int64
	rangeFallbacks   atomic.Int64
}

// SetEnabled turns the global counters on or off and returns the previous
// setting, so callers can restore it (the pattern bench.Run uses).
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether the global counters are recording.
func Enabled() bool { return enabled.Load() }

// Reset zeroes all global counters.
func Reset() {
	global.matmulCalls.Store(0)
	global.matmulFlops.Store(0)
	global.qrCalls.Store(0)
	global.qrFlops.Store(0)
	global.svdCalls.Store(0)
	global.randSVDCalls.Store(0)
	global.randSVDRetries.Store(0)
	global.randSVDFallbacks.Store(0)
	global.sliceSVDs.Store(0)
	global.sliceKernelRand.Store(0)
	global.sliceKernelExact.Store(0)
	global.sliceKernelGram.Store(0)
	global.rangeNodeBuilds.Store(0)
	global.rangeNodeHits.Store(0)
	global.rangeStitches.Store(0)
	global.rangeFallbacks.Store(0)
}

// Snapshot returns the current counter totals. When counting is disabled it
// returns whatever was accumulated while it was last enabled.
func Snapshot() Counters {
	return Counters{
		MatmulCalls:      global.matmulCalls.Load(),
		MatmulFlops:      global.matmulFlops.Load(),
		QRCalls:          global.qrCalls.Load(),
		QRFlops:          global.qrFlops.Load(),
		SVDCalls:         global.svdCalls.Load(),
		RandSVDCalls:     global.randSVDCalls.Load(),
		RandSVDRetries:   global.randSVDRetries.Load(),
		RandSVDFallbacks: global.randSVDFallbacks.Load(),
		SliceSVDs:        global.sliceSVDs.Load(),
		SliceKernelRand:  global.sliceKernelRand.Load(),
		SliceKernelExact: global.sliceKernelExact.Load(),
		SliceKernelGram:  global.sliceKernelGram.Load(),
		RangeNodeBuilds:  global.rangeNodeBuilds.Load(),
		RangeNodeHits:    global.rangeNodeHits.Load(),
		RangeStitches:    global.rangeStitches.Load(),
		RangeFallbacks:   global.rangeFallbacks.Load(),
	}
}

// CountMatmul records one dense multiply with inner dimension k producing an
// m×n result (2·m·k·n flops).
func CountMatmul(m, k, n int) {
	if !enabled.Load() {
		return
	}
	global.matmulCalls.Add(1)
	global.matmulFlops.Add(2 * int64(m) * int64(k) * int64(n))
}

// CountGram records one symmetric Gram product AᵀA for an m×n input
// (m·n² flops, exploiting symmetry).
func CountGram(m, n int) {
	if !enabled.Load() {
		return
	}
	global.matmulCalls.Add(1)
	global.matmulFlops.Add(int64(m) * int64(n) * int64(n))
}

// CountQR records one Householder QR of an m×n matrix.
func CountQR(m, n int) {
	if !enabled.Load() {
		return
	}
	k := int64(n)
	if int64(m) < k {
		k = int64(m)
	}
	global.qrCalls.Add(1)
	// 2·n²·(m − n/3) for m ≥ n, with k = min(m,n) guarding the wide case.
	global.qrFlops.Add(2 * k * k * (int64(m) - k/3))
}

// CountSVD records one exact dense SVD.
func CountSVD() {
	if !enabled.Load() {
		return
	}
	global.svdCalls.Add(1)
}

// CountRandSVD records one randomized SVD.
func CountRandSVD() {
	if !enabled.Load() {
		return
	}
	global.randSVDCalls.Add(1)
}

// CountRandSVDRetry records one randomized-SVD retry after a breakdown.
func CountRandSVDRetry() {
	if !enabled.Load() {
		return
	}
	global.randSVDRetries.Add(1)
}

// CountRandSVDFallback records one completed dense-SVD fallback after a
// randomized SVD (and its retry) broke down.
func CountRandSVDFallback() {
	if !enabled.Load() {
		return
	}
	global.randSVDFallbacks.Add(1)
}

// CountSliceSVD records one frontal-slice compression.
func CountSliceSVD() {
	if !enabled.Load() {
		return
	}
	global.sliceSVDs.Add(1)
}

// CountSliceKernelRand records one slice compressed by the randomized-SVD
// kernel.
func CountSliceKernelRand() {
	if !enabled.Load() {
		return
	}
	global.sliceKernelRand.Add(1)
}

// CountSliceKernelExact records one slice compressed by the exact dense-SVD
// kernel.
func CountSliceKernelExact() {
	if !enabled.Load() {
		return
	}
	global.sliceKernelExact.Add(1)
}

// CountSliceKernelGram records one slice compressed by the
// Gram-eigendecomposition kernel.
func CountSliceKernelGram() {
	if !enabled.Load() {
		return
	}
	global.sliceKernelGram.Add(1)
}

// CountRangeNodeBuild records one segment-tree node summary built or merged.
func CountRangeNodeBuild() {
	if !enabled.Load() {
		return
	}
	global.rangeNodeBuilds.Add(1)
}

// CountRangeNodeHit records one node summary served from the range index's
// cache.
func CountRangeNodeHit() {
	if !enabled.Load() {
		return
	}
	global.rangeNodeHits.Add(1)
}

// CountRangeStitch records one range query answered by stitching node
// summaries.
func CountRangeStitch() {
	if !enabled.Load() {
		return
	}
	global.rangeStitches.Add(1)
}

// CountRangeFallback records one range query that fell back to a direct
// DecomposeRange.
func CountRangeFallback() {
	if !enabled.Load() {
		return
	}
	global.rangeFallbacks.Add(1)
}
