package metrics

import (
	"expvar"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar publishes the global counters as the expvar variable
// "dtucker_metrics" and the kernel-latency histogram summaries as
// "dtucker_hists", so a debug HTTP server (cmd/dtucker -debug-addr)
// exposes live kernel activity at /debug/vars alongside the pprof
// endpoints. Safe to call more than once; only the first call registers.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("dtucker_metrics", expvar.Func(func() any { return Snapshot() }))
		expvar.Publish("dtucker_hists", expvar.Func(func() any { return Histograms() }))
	})
}
