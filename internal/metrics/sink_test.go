package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestTraceSinkSerializedAndTimestamped drives Tracef from many goroutines
// at once — the pool-worker scenario — into a sink with no locking of its
// own, and checks that no message interleaves and that the timestamp
// prefixes are present and non-decreasing in delivery order.
func TestTraceSinkSerializedAndTimestamped(t *testing.T) {
	c := &Collector{}
	var lines []string
	c.SetTrace(func(msg string) {
		// Deliberately unsynchronized: the Collector contract says the sink
		// is never invoked concurrently. Under -race this append is the test.
		lines = append(lines, msg)
	})

	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Tracef("worker %d message %d end", w, i)
			}
		}(w)
	}
	wg.Wait()

	if len(lines) != workers*per {
		t.Fatalf("sink saw %d lines, want %d", len(lines), workers*per)
	}
	prev := -1.0
	for _, ln := range lines {
		// Each line: "[  12.345678s] worker W message I end" — one complete
		// message per sink call, timestamp prefix first.
		if !strings.HasPrefix(ln, "[") {
			t.Fatalf("line lacks timestamp prefix: %q", ln)
		}
		close := strings.Index(ln, "s] ")
		if close < 0 {
			t.Fatalf("line lacks timestamp suffix: %q", ln)
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(ln[1:close]), 64)
		if err != nil {
			t.Fatalf("bad timestamp in %q: %v", ln, err)
		}
		if ts < prev {
			t.Fatalf("timestamps regressed: %v after %v", ts, prev)
		}
		prev = ts
		body := ln[close+len("s] "):]
		if !strings.HasPrefix(body, "worker ") || !strings.HasSuffix(body, " end") {
			t.Fatalf("interleaved or truncated message: %q", body)
		}
	}
}

// TestPhaseBracketsOpenSpans checks the collector's phase brackets drive the
// attached tracer: each Start/End pair yields one balanced phase span, and a
// restarted bracket closes the superseded span instead of leaking it.
func TestPhaseBracketsOpenSpans(t *testing.T) {
	c := &Collector{}
	tr := trace.New()
	c.SetTracer(tr)
	if c.Tracer() != tr {
		t.Fatal("Tracer() did not return the attached tracer")
	}

	c.StartPhase(PhaseApprox)
	c.EndPhase(PhaseApprox)
	c.StartPhase(PhaseIter)
	c.StartPhase(PhaseIter) // restart: supersedes the open bracket
	c.EndPhase(PhaseIter)

	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after balanced brackets", n)
	}
	var names []string
	for _, sp := range tr.Spans() {
		names = append(names, sp.Name)
	}
	want := "approximation iteration iteration"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("spans = %q, want %q", got, want)
	}
}

// TestNilCollectorTracerSafe pins the disabled path through the collector:
// nil collectors and collectors without a tracer hand back nil tracers whose
// methods no-op.
func TestNilCollectorTracerSafe(t *testing.T) {
	var c *Collector
	if c.Tracer() != nil {
		t.Fatal("nil collector returned a tracer")
	}
	c.SetTracer(trace.New()) // must not panic
	var c2 Collector
	if c2.Tracer() != nil {
		t.Fatal("fresh collector has a tracer")
	}
	span := c2.Tracer().Begin("x")
	span.End()
}

// TestTracefFormatting smoke-checks emit's prefix format.
func TestTracefFormatting(t *testing.T) {
	c := &Collector{}
	var got string
	c.SetTrace(func(msg string) { got = msg })
	c.Tracef("fit %.3f", 0.5)
	if !strings.Contains(got, "fit 0.500") {
		t.Fatalf("message body mangled: %q", got)
	}
	if _, err := fmt.Sscanf(got, "[ %fs]", new(float64)); err != nil {
		t.Fatalf("prefix not parseable: %q (%v)", got, err)
	}
}
