package metrics

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Phase identifies one of D-Tucker's three algorithm phases.
type Phase int

const (
	// PhaseApprox is the approximation phase (slice compression — the only
	// phase that reads raw tensor data).
	PhaseApprox Phase = iota
	// PhaseInit is the initialization phase (factors from stacked slice
	// factors and the projected tensor).
	PhaseInit
	// PhaseIter is the iteration phase (ALS sweeps on the compressed
	// representation). Baselines bracketed as a whole also land here.
	PhaseIter
	numPhases
)

// String returns the phase's presentation name.
func (p Phase) String() string {
	switch p {
	case PhaseApprox:
		return "approximation"
	case PhaseInit:
		return "initialization"
	case PhaseIter:
		return "iteration"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// PhaseStats aggregates one phase's activity across every bracket recorded
// into the collector (a streaming run brackets the same phase repeatedly).
type PhaseStats struct {
	Phase string        `json:"phase"`
	Wall  time.Duration `json:"wall_ns"`
	// Counters is the kernel activity attributed to the phase: the delta of
	// the global counters across its brackets.
	Counters Counters `json:"counters"`
	// AllocBytes is the cumulative heap allocation during the phase
	// (runtime TotalAlloc delta — churn, not residency).
	AllocBytes uint64 `json:"alloc_bytes"`
	// HeapBytes is the live heap sampled at the end of the last bracket,
	// the peak-memory proxy the ROADMAP's perf work tracks.
	HeapBytes uint64 `json:"heap_bytes"`
}

// FitSample is one point of the iteration phase's fit trajectory.
type FitSample struct {
	Sweep int     `json:"sweep"`
	Fit   float64 `json:"fit"`
}

// PoolStats summarizes the utilization of a decomposition's worker pool
// (see internal/pool): how many parallel regions ran, how many tasks they
// dispatched, and the summed busy time of the workers. BusyNanos divided by
// a run's iteration wall time approximates the achieved parallel speedup.
type PoolStats struct {
	Workers   int   `json:"workers"`
	Regions   int64 `json:"regions"`
	Tasks     int64 `json:"tasks"`
	BusyNanos int64 `json:"busy_ns"`
}

// ReportSchema is the version stamped into every Report as its "schema"
// field. Downstream parsers must check it and reject versions they do not
// know: columns may be added within a version, but renames or semantic
// changes bump it. Version history: 1 — initial versioned schema (phases,
// total, fit trajectory, pool, histograms).
const ReportSchema = 1

// Report is the JSON-serializable summary of a collected run — the payload
// of `cmd/dtucker -metrics-json`.
type Report struct {
	// Schema is the report format version (see ReportSchema).
	Schema int          `json:"schema"`
	Phases []PhaseStats `json:"phases"`
	Total  PhaseStats   `json:"total"`
	Fit    []FitSample  `json:"fit_trajectory,omitempty"`
	Pool   *PoolStats   `json:"pool,omitempty"`
	// Hists summarizes the kernel-latency histograms (p50/p95/p99) with at
	// least one observation. Like the counters they are process-global, so
	// they are attributable to this run only when it was the sole
	// instrumented run in the process.
	Hists []HistSnapshot `json:"histograms,omitempty"`
}

// Collector accumulates per-phase metrics for one logical run. The zero
// value is ready to use; a nil *Collector is also valid — every method is a
// nil-safe no-op, which is how the hot paths stay allocation-free when
// metrics are off. Methods are safe for concurrent use, though phase
// brackets are expected from the single goroutine driving the run.
type Collector struct {
	mu     sync.Mutex
	open   [numPhases]phaseOpen
	wall   [numPhases]time.Duration
	delta  [numPhases]Counters
	alloc  [numPhases]uint64
	heap   [numPhases]uint64
	fits   []FitSample
	pool   *PoolStats
	trace  func(string)
	tracer *trace.Tracer

	// sinkMu serializes trace-sink invocations: Tracef is called from pool
	// workers, and without this lock concurrent messages could interleave
	// inside the sink. It also orders the monotonic timestamps prefixed to
	// each line. Separate from mu so a slow sink never blocks phase
	// bookkeeping.
	sinkMu    sync.Mutex
	sinkStart time.Time
}

type phaseOpen struct {
	active   bool
	start    time.Time
	counters Counters
	totalAlc uint64
	span     trace.Ctx
}

// New returns a fresh Collector and enables the process-global kernel
// counters (they stay enabled afterwards; use SetEnabled(false) to turn
// instrumentation back off).
func New() *Collector {
	SetEnabled(true)
	return &Collector{}
}

// SetTrace installs a progress-trace sink; core emits phase transitions and
// per-sweep fits through it. A nil fn disables tracing.
//
// The sink is invoked serially (never concurrently, even when pool workers
// trace) and each message arrives prefixed with a monotonic timestamp
// "[  12.345678s]" measured from the moment the sink was installed, so the
// sink itself needs no locking and no clock.
func (c *Collector) SetTrace(fn func(msg string)) {
	if c == nil {
		return
	}
	c.sinkMu.Lock()
	if fn != nil && c.sinkStart.IsZero() {
		c.sinkStart = time.Now()
	}
	c.sinkMu.Unlock()
	c.mu.Lock()
	c.trace = fn
	c.mu.Unlock()
}

// SetTracer attaches a span tracer; core brackets decompositions, phases,
// sweeps, modes, and pool tasks with spans on it (see internal/trace). A
// nil tracer — the default — disables span recording at zero cost.
func (c *Collector) SetTracer(t *trace.Tracer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.tracer = t
	c.mu.Unlock()
}

// Tracer returns the attached span tracer, nil when none (including on a
// nil Collector, so call sites need no guards).
func (c *Collector) Tracer() *trace.Tracer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// emit pushes one formatted message through the sink, serialized under
// sinkMu and prefixed with the monotonic elapsed time — the lock both
// prevents interleaving and makes the prefixed timestamps non-decreasing in
// sink-call order.
func (c *Collector) emit(fn func(string), msg string) {
	c.sinkMu.Lock()
	defer c.sinkMu.Unlock()
	fn(fmt.Sprintf("[%10.6fs] %s", time.Since(c.sinkStart).Seconds(), msg))
}

// Tracing reports whether a trace sink is installed. Callers formatting
// expensive messages should gate on it so disabled tracing costs nothing.
func (c *Collector) Tracing() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trace != nil
}

// Tracef formats and emits one trace message if a sink is installed. Safe
// to call from any goroutine: messages are delivered to the sink one at a
// time, timestamped in delivery order.
func (c *Collector) Tracef(format string, args ...any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	fn := c.trace
	c.mu.Unlock()
	if fn != nil {
		c.emit(fn, fmt.Sprintf(format, args...))
	}
}

// StartPhase opens a bracket for p: it samples the wall clock, the global
// counters, and the allocator. Brackets of distinct phases may nest (a
// streaming Append inside an outer bracket), but a phase does not nest with
// itself; re-opening an open phase restarts its bracket.
func (c *Collector) StartPhase(p Phase) {
	if c == nil || p < 0 || p >= numPhases {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.mu.Lock()
	tr := c.tracer
	prev := c.open[p].span
	c.mu.Unlock()
	// Restarting an open phase replaces its bracket; close the superseded
	// span first so the trace stays balanced.
	prev.End()
	span := tr.Begin(p.String())
	c.mu.Lock()
	c.open[p] = phaseOpen{active: true, start: time.Now(), counters: Snapshot(), totalAlc: ms.TotalAlloc, span: span}
	c.mu.Unlock()
}

// EndPhase closes the bracket for p, folding its wall time, counter delta,
// and allocation delta into the phase's aggregate, and emits a trace line.
// EndPhase without a matching StartPhase is a no-op.
func (c *Collector) EndPhase(p Phase) {
	if c == nil || p < 0 || p >= numPhases {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()
	snap := Snapshot()
	c.mu.Lock()
	o := c.open[p]
	if !o.active {
		c.mu.Unlock()
		return
	}
	c.open[p] = phaseOpen{}
	wall := now.Sub(o.start)
	c.wall[p] += wall
	c.delta[p] = c.delta[p].Add(snap.Sub(o.counters))
	c.alloc[p] += ms.TotalAlloc - o.totalAlc
	c.heap[p] = ms.HeapAlloc
	fn := c.trace
	c.mu.Unlock()
	o.span.End()
	if fn != nil {
		c.emit(fn, fmt.Sprintf("%s done in %v", p, wall.Round(time.Microsecond)))
	}
}

// RecordFit appends one point to the fit trajectory and traces it.
func (c *Collector) RecordFit(sweep int, fit float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.fits = append(c.fits, FitSample{Sweep: sweep, Fit: fit})
	fn := c.trace
	c.mu.Unlock()
	if fn != nil {
		c.emit(fn, fmt.Sprintf("sweep %d fit %.6f", sweep, fit))
	}
}

// RecordPool stores a snapshot of the run's worker-pool utilization
// counters; the latest snapshot wins (core records once, at the end of a
// decomposition).
func (c *Collector) RecordPool(ps PoolStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.pool = &ps
	c.mu.Unlock()
}

// PoolStats returns the recorded pool snapshot, or nil if none was recorded
// (e.g. a run driven without a pool-aware entry point).
func (c *Collector) PoolStats() *PoolStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool == nil {
		return nil
	}
	ps := *c.pool
	return &ps
}

// PhaseStats returns the aggregate for one phase.
func (c *Collector) PhaseStats(p Phase) PhaseStats {
	if c == nil || p < 0 || p >= numPhases {
		return PhaseStats{Phase: p.String()}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PhaseStats{
		Phase:      p.String(),
		Wall:       c.wall[p],
		Counters:   c.delta[p],
		AllocBytes: c.alloc[p],
		HeapBytes:  c.heap[p],
	}
}

// FitTrajectory returns a copy of the recorded fit trajectory.
func (c *Collector) FitTrajectory() []FitSample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FitSample(nil), c.fits...)
}

// Report assembles the per-phase stats, their total, and the fit trajectory.
func (c *Collector) Report() Report {
	var rep Report
	if c == nil {
		return rep
	}
	rep.Schema = ReportSchema
	total := PhaseStats{Phase: "total"}
	for p := Phase(0); p < numPhases; p++ {
		st := c.PhaseStats(p)
		rep.Phases = append(rep.Phases, st)
		total.Wall += st.Wall
		total.Counters = total.Counters.Add(st.Counters)
		total.AllocBytes += st.AllocBytes
		if st.HeapBytes > total.HeapBytes {
			total.HeapBytes = st.HeapBytes
		}
	}
	rep.Total = total
	rep.Fit = c.FitTrajectory()
	rep.Pool = c.PoolStats()
	rep.Hists = Histograms()
	return rep
}

// Table renders the report as an aligned per-phase text table — the output
// of `cmd/dtucker -metrics`.
func (c *Collector) Table() string {
	rep := c.Report()
	rows := [][]string{{"phase", "wall", "slice-svd", "svd", "randsvd", "fallback", "qr", "matmul", "flops", "alloc"}}
	for _, st := range append(rep.Phases, rep.Total) {
		rows = append(rows, []string{
			st.Phase,
			fmtWall(st.Wall),
			fmt.Sprint(st.Counters.SliceSVDs),
			fmt.Sprint(st.Counters.SVDCalls),
			fmt.Sprint(st.Counters.RandSVDCalls),
			fmt.Sprint(st.Counters.RandSVDFallbacks),
			fmt.Sprint(st.Counters.QRCalls),
			fmt.Sprint(st.Counters.MatmulCalls),
			fmtFlops(st.Counters.MatmulFlops + st.Counters.QRFlops),
			fmtBytes(st.AllocBytes),
		})
	}
	out := alignRows(rows)
	if rep.Pool != nil {
		p := rep.Pool
		out += fmt.Sprintf("pool: %d workers, %d parallel regions, %d tasks, busy %v\n",
			p.Workers, p.Regions, p.Tasks, time.Duration(p.BusyNanos).Round(time.Microsecond))
	}
	if len(rep.Hists) > 0 {
		hrows := [][]string{{"histogram", "count", "mean", "p50", "p95", "p99"}}
		for _, h := range rep.Hists {
			hrows = append(hrows, []string{
				h.Name,
				fmt.Sprint(h.Count),
				fmtWall(h.Mean()),
				fmtWall(h.P50),
				fmtWall(h.P95),
				fmtWall(h.P99),
			})
		}
		out += alignRows(hrows)
	}
	return out
}

func fmtWall(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtFlops(f int64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%.2f GF", float64(f)/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.2f MF", float64(f)/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.1f kF", float64(f)/1e3)
	default:
		return fmt.Sprint(f)
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f kB", float64(b)/(1<<10))
	default:
		return fmt.Sprint(b)
	}
}

func alignRows(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for i, row := range rows {
		for c, cell := range row {
			sb.WriteString(cell)
			if c < len(row)-1 {
				sb.WriteString(strings.Repeat(" ", widths[c]-len(cell)+2))
			}
		}
		sb.WriteByte('\n')
		if i == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total-2))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
