package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRender produces a fixed exposition payload covering every family
// shape: unlabeled counter, labeled counter (shared header), gauge, and a
// histogram with observations in known buckets so the le edges are exact.
func goldenRender() []byte {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("dtuckerd_jobs_total", "Jobs by outcome.", 12, "outcome", "done")
	p.Counter("dtuckerd_jobs_total", "Jobs by outcome.", 3, "outcome", "failed")
	p.Counter("dtucker_svd_calls_total", "Exact dense SVD invocations.", 42)
	p.Gauge("dtuckerd_queue_len", "Jobs waiting in the admission queue.", 7)
	p.Gauge("dtuckerd_cache_hit_ratio", "Result cache hit ratio.", 0.25)
	// counts: 2 sub-ns observations, 3 in [1024ns, 2048ns), 1 in [1.048ms, 2.097ms).
	counts := make([]int64, 64)
	counts[0], counts[11], counts[21] = 2, 3, 1
	p.HistogramNS("dtucker_latency_seconds", "Kernel and serving latency by operation.",
		counts, 2_100_000, "op", "matmul")
	// An empty histogram still renders +Inf/_sum/_count under the same header.
	p.HistogramNS("dtucker_latency_seconds", "Kernel and serving latency by operation.",
		make([]int64, 64), 0, "op", "slice-svd")
	return buf.Bytes()
}

// TestPromGolden pins the exposition byte-for-byte: header dedup, label
// rendering, cumulative buckets, and the exact le edges of the log₂ layout
// (1e-09, 2.048e-06, 0.002097152 for buckets 0, 11, 21).
func TestPromGolden(t *testing.T) {
	got := goldenRender()
	path := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("rendering drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The golden payload must itself be a valid scrape.
	if err := LintPrometheus(bytes.NewReader(got)); err != nil {
		t.Errorf("golden payload fails lint: %v", err)
	}
	// Spot-check the exact le edges the issue pins.
	for _, want := range []string{
		`le="1e-09"`, `le="2.048e-06"`, `le="0.002097152"`, `le="+Inf"`,
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("payload missing %s", want)
		}
	}
}

// TestWritePrometheusValid exercises the full package renderer over live
// global state and asserts scrape validity.
func TestWritePrometheusValid(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	Reset()
	ResetHists()
	defer Reset()
	defer ResetHists()
	CountMatmul(8, 8, 8)
	CountSVD()
	Observe(HistMatmul, 1500*time.Nanosecond)
	Observe(HistMatmul, 3*time.Millisecond)
	Observe(HistSliceSVD, 2*time.Microsecond)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("live payload fails lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"dtucker_matmul_calls_total 1",
		"dtucker_svd_calls_total 1",
		`dtucker_latency_seconds_count{op="matmul"} 2`,
		`dtucker_latency_seconds_count{op="slice-svd"} 1`,
		`dtucker_slice_kernel_total{kernel="randsvd"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("payload missing %q", want)
		}
	}
}

// TestLintRejectsInvalid proves the lint actually catches the format
// violations it claims to.
func TestLintRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"no TYPE": "foo_total 3\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="0.2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\nh_sum 1\nh_count 5\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 6\n",
		"counter without _total": "# TYPE c counter\nc 3\n",
		"bad name":               "# TYPE 9bad counter\n9bad_total 3\n",
	}
	for name, payload := range cases {
		if err := LintPrometheus(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: lint accepted invalid payload:\n%s", name, payload)
		}
	}
	valid := "# TYPE ok_total counter\nok_total{a=\"b\"} 1\n# TYPE g gauge\ng 0.5\n"
	if err := LintPrometheus(strings.NewReader(valid)); err != nil {
		t.Errorf("lint rejected valid payload: %v", err)
	}
}
