package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// withCounters runs fn with the global counters enabled and reset, restoring
// the previous enabled state afterwards.
func withCounters(t *testing.T, fn func()) {
	t.Helper()
	prev := SetEnabled(true)
	Reset()
	defer func() {
		SetEnabled(prev)
		Reset()
	}()
	fn()
}

func TestCountersDisabledByDefaultAndZeroAlloc(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	Reset()

	allocs := testing.AllocsPerRun(1000, func() {
		CountMatmul(64, 64, 64)
		CountGram(64, 8)
		CountQR(64, 8)
		CountSVD()
		CountRandSVD()
		CountSliceSVD()
	})
	if allocs != 0 {
		t.Fatalf("disabled counters allocated %v times per run", allocs)
	}
	if s := Snapshot(); s != (Counters{}) {
		t.Fatalf("disabled counters recorded activity: %+v", s)
	}
}

func TestCountersEnabledZeroAlloc(t *testing.T) {
	withCounters(t, func() {
		allocs := testing.AllocsPerRun(1000, func() {
			CountMatmul(64, 64, 64)
			CountSVD()
		})
		if allocs != 0 {
			t.Fatalf("enabled counters allocated %v times per run", allocs)
		}
	})
}

func TestCounterArithmetic(t *testing.T) {
	withCounters(t, func() {
		CountMatmul(2, 3, 4)
		CountMatmul(2, 3, 4)
		CountGram(10, 4)
		CountQR(10, 4)
		CountSVD()
		CountRandSVD()
		CountSliceSVD()
		s := Snapshot()
		if s.MatmulCalls != 3 { // 2 matmuls + 1 gram
			t.Errorf("MatmulCalls = %d", s.MatmulCalls)
		}
		if want := int64(2*(2*2*3*4) + 10*4*4); s.MatmulFlops != want {
			t.Errorf("MatmulFlops = %d, want %d", s.MatmulFlops, want)
		}
		if s.QRCalls != 1 || s.SVDCalls != 1 || s.RandSVDCalls != 1 || s.SliceSVDs != 1 {
			t.Errorf("call counters: %+v", s)
		}
		if want := int64(2 * 4 * 4 * (10 - 4/3)); s.QRFlops != want {
			t.Errorf("QRFlops = %d, want %d", s.QRFlops, want)
		}
		d := s.Sub(Counters{MatmulCalls: 1, SVDCalls: 1})
		if d.MatmulCalls != 2 || d.SVDCalls != 0 {
			t.Errorf("Sub: %+v", d)
		}
		if a := d.Add(Counters{SVDCalls: 5}); a.SVDCalls != 5 {
			t.Errorf("Add: %+v", a)
		}
	})
}

func TestNilCollectorIsSafeAndFree(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		c.StartPhase(PhaseApprox)
		c.EndPhase(PhaseApprox)
		c.RecordFit(1, 0.5)
		if c.Tracing() {
			t.Fatal("nil collector reports tracing")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil collector allocated %v times per run", allocs)
	}
	if got := c.PhaseStats(PhaseIter); got.Phase != "iteration" {
		t.Fatalf("nil PhaseStats: %+v", got)
	}
	if rep := c.Report(); len(rep.Phases) != 0 {
		t.Fatalf("nil Report: %+v", rep)
	}
	if c.FitTrajectory() != nil {
		t.Fatal("nil FitTrajectory not nil")
	}
	c.SetTrace(func(string) {})
	c.Tracef("ignored %d", 1)
}

func TestCollectorPhaseBrackets(t *testing.T) {
	withCounters(t, func() {
		c := &Collector{}
		c.StartPhase(PhaseApprox)
		CountSliceSVD()
		CountRandSVD()
		time.Sleep(time.Millisecond)
		c.EndPhase(PhaseApprox)

		c.StartPhase(PhaseIter)
		CountSVD()
		c.EndPhase(PhaseIter)
		c.RecordFit(1, 0.9)
		c.RecordFit(2, 0.95)

		ap := c.PhaseStats(PhaseApprox)
		if ap.Counters.SliceSVDs != 1 || ap.Counters.RandSVDCalls != 1 {
			t.Errorf("approx counters: %+v", ap.Counters)
		}
		if ap.Wall <= 0 {
			t.Errorf("approx wall = %v", ap.Wall)
		}
		it := c.PhaseStats(PhaseIter)
		if it.Counters.SVDCalls != 1 || it.Counters.SliceSVDs != 0 {
			t.Errorf("iter counters: %+v", it.Counters)
		}
		if got := c.FitTrajectory(); len(got) != 2 || got[1].Fit != 0.95 {
			t.Errorf("fit trajectory: %+v", got)
		}

		rep := c.Report()
		if rep.Total.Counters.SVDCalls != 1 || rep.Total.Counters.SliceSVDs != 1 {
			t.Errorf("total counters: %+v", rep.Total.Counters)
		}
		if rep.Total.Wall < ap.Wall {
			t.Errorf("total wall %v < approx wall %v", rep.Total.Wall, ap.Wall)
		}
	})
}

func TestCollectorAccumulatesRepeatedBrackets(t *testing.T) {
	withCounters(t, func() {
		c := &Collector{}
		for i := 0; i < 3; i++ {
			c.StartPhase(PhaseApprox)
			CountSliceSVD()
			c.EndPhase(PhaseApprox)
		}
		if got := c.PhaseStats(PhaseApprox).Counters.SliceSVDs; got != 3 {
			t.Fatalf("accumulated slice SVDs = %d, want 3", got)
		}
	})
}

func TestEndPhaseWithoutStartIsNoop(t *testing.T) {
	c := &Collector{}
	c.EndPhase(PhaseInit)
	if st := c.PhaseStats(PhaseInit); st.Wall != 0 {
		t.Fatalf("unmatched EndPhase recorded wall %v", st.Wall)
	}
}

func TestTrace(t *testing.T) {
	c := &Collector{}
	var msgs []string
	c.SetTrace(func(m string) { msgs = append(msgs, m) })
	if !c.Tracing() {
		t.Fatal("Tracing() false after SetTrace")
	}
	c.StartPhase(PhaseInit)
	c.EndPhase(PhaseInit)
	c.RecordFit(3, 0.875)
	c.Tracef("custom %d", 7)
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"initialization done in", "sweep 3 fit 0.875", "custom 7"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace output missing %q:\n%s", want, joined)
		}
	}
}

func TestTableAndJSON(t *testing.T) {
	withCounters(t, func() {
		c := &Collector{}
		c.StartPhase(PhaseApprox)
		CountSliceSVD()
		CountMatmul(100, 100, 100)
		c.EndPhase(PhaseApprox)

		tab := c.Table()
		for _, want := range []string{"phase", "approximation", "initialization", "iteration", "total", "flops"} {
			if !strings.Contains(tab, want) {
				t.Errorf("table missing %q:\n%s", want, tab)
			}
		}

		b, err := json.Marshal(c.Report())
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		if len(rep.Phases) != 3 || rep.Total.Counters.SliceSVDs != 1 {
			t.Fatalf("round-tripped report: %+v", rep)
		}
	})
}

func TestPhaseString(t *testing.T) {
	if PhaseApprox.String() != "approximation" || Phase(99).String() != "phase(99)" {
		t.Fatal("Phase.String mismatch")
	}
}
