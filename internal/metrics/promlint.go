package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-format payload the way
// `promtool check metrics` does, scoped to what this package emits:
//
//   - every sample belongs to a family with a preceding # TYPE line;
//   - metric and label names are legal;
//   - histogram buckets are cumulative (monotonically non-decreasing in le
//     order), end with le="+Inf", and the +Inf bucket equals _count;
//   - counter and histogram family names end in _total / have _bucket,
//     _sum, _count series consistent with their type.
//
// It returns the first violation found, or nil for a valid payload. Tests
// use it to assert scrape validity without a prometheus dependency.
func LintPrometheus(r io.Reader) error {
	types := make(map[string]string) // family -> declared type
	// Histogram accounting per family+labels (excluding le).
	type histState struct {
		lastLe  float64
		lastCum int64
		infSeen bool
		infVal  int64
		count   int64
		hasCnt  bool
	}
	hists := make(map[string]*histState)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				if prev, ok := types[name]; ok && prev != typ {
					return fmt.Errorf("line %d: family %q re-typed %s -> %s", lineNo, name, prev, typ)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family, suffix := histFamily(name, types)
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter %q does not end in _total", lineNo, name)
			}
			if value < 0 {
				return fmt.Errorf("line %d: counter %q is negative", lineNo, name)
			}
		case "histogram":
			le, rest, hasLe := splitLe(labels)
			key := family + "|" + rest
			st := hists[key]
			if st == nil {
				st = &histState{lastLe: math.Inf(-1)}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				if !hasLe {
					return fmt.Errorf("line %d: %s_bucket sample without le label", lineNo, family)
				}
				leV := math.Inf(1)
				if le != "+Inf" {
					leV, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
					}
				}
				if leV <= st.lastLe {
					return fmt.Errorf("line %d: %s le=%q out of order", lineNo, family, le)
				}
				cum := int64(value)
				if cum < st.lastCum {
					return fmt.Errorf("line %d: %s buckets not cumulative at le=%q (%d < %d)",
						lineNo, family, le, cum, st.lastCum)
				}
				st.lastLe, st.lastCum = leV, cum
				if le == "+Inf" {
					st.infSeen, st.infVal = true, cum
				}
			case "_sum":
			case "_count":
				st.count, st.hasCnt = int64(value), true
			default:
				return fmt.Errorf("line %d: unexpected histogram series %q", lineNo, name)
			}
		case "gauge":
		default:
			return fmt.Errorf("line %d: unknown type %q for %q", lineNo, typ, family)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, st := range hists {
		family := key[:strings.IndexByte(key, '|')]
		if !st.infSeen {
			return fmt.Errorf("histogram %s (%s) missing le=\"+Inf\" bucket", family, key)
		}
		if !st.hasCnt {
			return fmt.Errorf("histogram %s (%s) missing _count", family, key)
		}
		if st.infVal != st.count {
			return fmt.Errorf("histogram %s (%s): +Inf bucket %d != _count %d", family, key, st.infVal, st.count)
		}
	}
	return nil
}

// histFamily strips a histogram series suffix when the base name is a
// declared histogram family; otherwise the name is its own family.
func histFamily(name string, types map[string]string) (family, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name && types[base] == "histogram" {
			return base, s
		}
	}
	return name, ""
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, v, nil
}

// splitLe extracts the le label value from a rendered label body and
// returns the remaining labels as a canonical grouping key.
func splitLe(labels string) (le, rest string, ok bool) {
	var keep []string
	for _, part := range strings.Split(labels, ",") {
		if part == "" {
			continue
		}
		if v, found := strings.CutPrefix(part, `le="`); found {
			le, ok = strings.TrimSuffix(v, `"`), true
			continue
		}
		keep = append(keep, part)
	}
	return le, strings.Join(keep, ","), ok
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
