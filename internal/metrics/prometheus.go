package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromWriter renders metric families in the Prometheus text exposition
// format (version 0.0.4) without any dependency on a client library. It
// tracks which families have had their # HELP / # TYPE header written, so
// multiple samples of one family (different label sets) share one header —
// a format requirement promtool enforces.
type PromWriter struct {
	w      io.Writer
	headed map[string]struct{}
	err    error
}

// NewPromWriter returns a writer rendering onto w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, headed: make(map[string]struct{})}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header writes the # HELP / # TYPE preamble for family name once.
func (p *PromWriter) header(name, help, typ string) {
	if _, ok := p.headed[name]; ok {
		return
	}
	p.headed[name] = struct{}{}
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelString renders a label set from alternating key, value pairs:
// `{k1="v1",k2="v2"}`, or "" for no labels.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter writes one counter sample. labels are alternating key, value
// pairs.
func (p *PromWriter) Counter(name, help string, v int64, labels ...string) {
	p.header(name, help, "counter")
	p.printf("%s%s %d\n", name, labelString(labels), v)
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	p.printf("%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// HistogramNS writes one histogram in native cumulative form from raw
// per-bucket counts of nanosecond observations (the log₂ layout of
// HistCounts): bucket b covers latencies below HistBucketUpper(b), so its
// cumulative count is exposed at le = upper(b) seconds. Buckets are
// rendered up to the highest non-empty bucket, then +Inf; an empty
// histogram renders just +Inf, _sum, and _count. sumNS is total observed
// nanoseconds; the exposed _sum is in seconds to match the le edges.
func (p *PromWriter) HistogramNS(name, help string, counts []int64, sumNS int64, labels ...string) {
	p.header(name, help, "histogram")
	highest := -1
	var total int64
	for b, c := range counts {
		total += c
		if c > 0 {
			highest = b
		}
	}
	var cum int64
	for b := 0; b <= highest; b++ {
		cum += counts[b]
		le := formatFloat(float64(HistBucketUpper(b)) / 1e9)
		p.printf("%s_bucket%s %d\n", name, labelString(append(labels, "le", le)), cum)
	}
	p.printf("%s_bucket%s %d\n", name, labelString(append(labels, "le", "+Inf")), total)
	p.printf("%s_sum%s %s\n", name, labelString(labels), formatFloat(float64(sumNS)/1e9))
	p.printf("%s_count%s %d\n", name, labelString(labels), total)
}

// WritePrometheus renders this package's global state — the kernel
// counters and every latency histogram — in Prometheus text format.
// Callers with their own state (the server's admission and durability
// stats) append to the same writer via a PromWriter.
func WritePrometheus(w io.Writer) error {
	p := NewPromWriter(w)
	WriteCountersProm(p)
	WriteHistogramsProm(p)
	return p.Err()
}

// WriteCountersProm renders the kernel counters onto p.
func WriteCountersProm(p *PromWriter) {
	c := Snapshot()
	p.Counter("dtucker_matmul_calls_total", "Dense multiply kernel invocations.", c.MatmulCalls)
	p.Counter("dtucker_matmul_flops_total", "Estimated floating-point operations by multiply kernels.", c.MatmulFlops)
	p.Counter("dtucker_qr_calls_total", "Householder QR factorizations.", c.QRCalls)
	p.Counter("dtucker_qr_flops_total", "Estimated floating-point operations by QR.", c.QRFlops)
	p.Counter("dtucker_svd_calls_total", "Exact dense SVD invocations.", c.SVDCalls)
	p.Counter("dtucker_randsvd_calls_total", "Randomized SVD invocations.", c.RandSVDCalls)
	p.Counter("dtucker_randsvd_retries_total", "Randomized SVDs re-run after numerical breakdown.", c.RandSVDRetries)
	p.Counter("dtucker_randsvd_fallbacks_total", "Randomized SVDs completed via the dense-SVD fallback.", c.RandSVDFallbacks)
	p.Counter("dtucker_slice_svds_total", "Frontal-slice compressions in the approximation phase.", c.SliceSVDs)
	p.Counter("dtucker_slice_kernel_total", "Slice compressions by kernel.", c.SliceKernelRand, "kernel", "randsvd")
	p.Counter("dtucker_slice_kernel_total", "Slice compressions by kernel.", c.SliceKernelExact, "kernel", "exact")
	p.Counter("dtucker_slice_kernel_total", "Slice compressions by kernel.", c.SliceKernelGram, "kernel", "gram")
	p.Counter("dtucker_range_node_builds_total", "Range-index node summaries built or merged.", c.RangeNodeBuilds)
	p.Counter("dtucker_range_node_hits_total", "Range-index node summaries served from cache.", c.RangeNodeHits)
	p.Counter("dtucker_range_queries_total", "Range queries by answer path.", c.RangeStitches, "path", "stitch")
	p.Counter("dtucker_range_queries_total", "Range queries by answer path.", c.RangeFallbacks, "path", "fallback")
}

// WriteHistogramsProm renders every latency histogram onto p as one
// family, labeled by operation name.
func WriteHistogramsProm(p *PromWriter) {
	for id := HistID(0); id < numHistIDs; id++ {
		p.HistogramNS("dtucker_latency_seconds", "Kernel and serving latency by operation.",
			HistCounts(id), HistSum(id), "op", id.String())
	}
}
