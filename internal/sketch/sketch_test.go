package sketch

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	a := make([]complex128, 8)
	a[0] = 1
	FFT(a)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("FFT(impulse)[%d] = %v", i, v)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 16, 128} {
		a := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = a[i]
		}
		FFT(a)
		IFFT(a)
		for i := range a {
			if cmplx.Abs(a[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, a[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	a := make([]complex128, n)
	sumT := 0.0
	for i := range a {
		a[i] = complex(rng.NormFloat64(), 0)
		sumT += real(a[i]) * real(a[i])
	}
	FFT(a)
	sumF := 0.0
	for _, v := range a {
		sumF += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(sumF-float64(n)*sumT) > 1e-8*sumF {
		t.Fatalf("Parseval violated: %g vs %g", sumF, float64(n)*sumT)
	}
}

func TestFFTConvolutionTheorem(t *testing.T) {
	// Circular convolution via FFT must match the direct sum.
	rng := rand.New(rand.NewSource(3))
	n := 16
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i := range a {
		fa[i] = complex(a[i], 0)
		fb[i] = complex(b[i], 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	for k := 0; k < n; k++ {
		direct := 0.0
		for i := 0; i < n; i++ {
			direct += a[i] * b[(k-i+n)%n]
		}
		if math.Abs(real(fa[k])-direct) > 1e-10 {
			t.Fatalf("convolution mismatch at %d: %g vs %g", k, real(fa[k]), direct)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two length accepted")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestCountSketchUnbiasedInnerProduct(t *testing.T) {
	// E[⟨Sx, Sy⟩] = ⟨x, y⟩; check the average over many sketches.
	rng := rand.New(rand.NewSource(4))
	dim, m := 50, 16
	x := mat.RandN(dim, 1, rng)
	y := mat.RandN(dim, 1, rng)
	want := mat.Dot(x.Col(0), y.Col(0))
	trials := 600
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		cs := NewCountSketch(dim, m, rng)
		sx := cs.ApplyMatrix(x)
		sy := cs.ApplyMatrix(y)
		sum += mat.Dot(sx.Col(0), sy.Col(0))
	}
	got := sum / float64(trials)
	if math.Abs(got-want) > 0.25*math.Abs(want)+0.5 {
		t.Fatalf("sketched inner product mean %g vs true %g", got, want)
	}
}

func TestCountSketchPreservesColumnSums(t *testing.T) {
	// Column sums are invariant up to signs: Σ_r (Sx)[r] = Σ_i s(i)·x[i];
	// with all-positive deterministic input and sign pattern applied twice,
	// the norm identity ‖Sx‖² = Σ buckets is checkable directly.
	rng := rand.New(rand.NewSource(5))
	cs := NewCountSketch(10, 4, rng)
	a := mat.RandN(10, 3, rng)
	sa := cs.ApplyMatrix(a)
	if sa.Rows() != 4 || sa.Cols() != 3 {
		t.Fatalf("sketched dims %d×%d", sa.Rows(), sa.Cols())
	}
	for j := 0; j < 3; j++ {
		wantSum := 0.0
		for i := 0; i < 10; i++ {
			wantSum += cs.Sign[i] * a.At(i, j)
		}
		gotSum := 0.0
		for r := 0; r < 4; r++ {
			gotSum += sa.At(r, j)
		}
		if math.Abs(gotSum-wantSum) > 1e-12 {
			t.Fatalf("column %d sum %g vs %g", j, gotSum, wantSum)
		}
	}
}

// explicitKroneckerSketch applies the combined CountSketch (sum of hashes,
// product of signs) to the explicit Kronecker product — the ground truth
// the FFT path must match.
func explicitKroneckerSketch(css []CountSketch, factors []*mat.Dense, m int) *mat.Dense {
	kron := factors[len(factors)-1]
	for k := len(factors) - 2; k >= 0; k-- {
		kron = mat.Kronecker(kron, factors[k]) // first mode fastest
	}
	rows := kron.Rows()
	out := mat.New(m, kron.Cols())
	dims := make([]int, len(factors))
	for k, f := range factors {
		dims[k] = f.Rows()
	}
	for r := 0; r < rows; r++ {
		// Decode r into per-mode indices, first mode fastest.
		rr := r
		h := 0
		s := 1.0
		for k := 0; k < len(factors); k++ {
			i := rr % dims[k]
			rr /= dims[k]
			h += int(css[k].H[i])
			s *= css[k].Sign[i]
		}
		mat.Axpy(s, kron.Row(r), out.Row(h%m))
	}
	return out
}

func TestKroneckerSketchMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := 16
	factors := []*mat.Dense{mat.RandN(5, 2, rng), mat.RandN(4, 3, rng)}
	css := []CountSketch{NewCountSketch(5, m, rng), NewCountSketch(4, m, rng)}
	got := KroneckerSketch(css, factors, m)
	want := explicitKroneckerSketch(css, factors, m)
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("FFT KroneckerSketch disagrees with explicit combined CountSketch")
	}
}

func TestKroneckerSketchThreeFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := 32
	factors := []*mat.Dense{mat.RandN(3, 2, rng), mat.RandN(4, 2, rng), mat.RandN(2, 2, rng)}
	css := []CountSketch{
		NewCountSketch(3, m, rng),
		NewCountSketch(4, m, rng),
		NewCountSketch(2, m, rng),
	}
	got := KroneckerSketch(css, factors, m)
	want := explicitKroneckerSketch(css, factors, m)
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("3-factor KroneckerSketch mismatch")
	}
}

func TestSketchTensorMatchesExplicitUnfoldings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.RandN(rng, 4, 3, 5)
	m1, m2 := 16, 32
	ts := SketchTensor(x, m1, m2, rng)

	// Ground truth for Z[n]: apply the combined sketch over modes k≠n to
	// the rows of X_(n)ᵀ.
	shape := x.Shape()
	for n := 0; n < 3; n++ {
		want := mat.New(m1, shape[n])
		unf := x.Unfold(n) // I_n × rest, columns enumerate k≠n lower fastest
		restDims := []int{}
		restModes := []int{}
		for k := 0; k < 3; k++ {
			if k != n {
				restDims = append(restDims, shape[k])
				restModes = append(restModes, k)
			}
		}
		for c := 0; c < unf.Cols(); c++ {
			cc := c
			h := 0
			s := 1.0
			for k, d := range restDims {
				i := cc % d
				cc /= d
				h += int(ts.CS1[restModes[k]].H[i])
				s *= ts.CS1[restModes[k]].Sign[i]
			}
			row := h % m1
			for i := 0; i < shape[n]; i++ {
				want.Set(row, i, want.At(row, i)+s*unf.At(i, c))
			}
		}
		if !ts.Z[n].EqualApprox(want, 1e-10) {
			t.Fatalf("Z[%d] disagrees with explicit sketch", n)
		}
	}

	// Ground truth for Z2 over vec(X) (first index fastest).
	wantZ2 := make([]float64, m2)
	idx := make([]int, 3)
	for _, v := range x.Data() {
		h := 0
		s := 1.0
		for k := 0; k < 3; k++ {
			h += int(ts.CS2[k].H[idx[k]])
			s *= ts.CS2[k].Sign[idx[k]]
		}
		wantZ2[h%m2] += s * v
		for k := 0; k < 3; k++ {
			idx[k]++
			if idx[k] < shape[k] {
				break
			}
			idx[k] = 0
		}
	}
	for i := range wantZ2 {
		if math.Abs(ts.Z2[i]-wantZ2[i]) > 1e-10 {
			t.Fatalf("Z2[%d] = %g, want %g", i, ts.Z2[i], wantZ2[i])
		}
	}
}

func TestSketchedProductApproximatesTrueProduct(t *testing.T) {
	// Zᵀ_n·TS(⊗A) ≈ X_(n)·(⊗A): the TTMTS identity, checked within a loose
	// relative tolerance using a healthy sketch size.
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandN(rng, 6, 5, 4)
	a2 := mat.RandN(5, 2, rng)
	a3 := mat.RandN(4, 2, rng)
	m := 512
	ts := SketchTensor(x, m, m, rng)
	tmat := KroneckerSketch([]CountSketch{ts.CS1[1], ts.CS1[2]}, []*mat.Dense{a2, a3}, m)
	got := mat.MulTA(ts.Z[0], tmat)
	want := mat.Mul(x.Unfold(0), mat.Kronecker(a3, a2)) // lower mode fastest
	rel := got.Sub(want).Norm() / want.Norm()
	if rel > 0.35 {
		t.Fatalf("sketched product relative error %g", rel)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	a := make([]complex128, 1024)
	for i := range a {
		a[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(a)
	}
}
