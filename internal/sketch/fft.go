// Package sketch implements the randomized sketching substrate used by the
// TensorSketch-based Tucker baselines (Malik & Becker, NeurIPS 2018):
// a radix-2 FFT, CountSketch, and the FFT-based TensorSketch of Kronecker
// products of factor matrices, plus a one-pass TensorSketch of a dense
// tensor's unfoldings.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the in-place radix-2 Cooley-Tukey FFT of a. len(a) must be a
// power of two.
func FFT(a []complex128) {
	fft(a, false)
}

// IFFT computes the in-place inverse FFT of a (including the 1/n scaling).
// len(a) must be a power of two.
func IFFT(a []complex128) {
	fft(a, true)
	n := complex(float64(len(a)), 0)
	for i := range a {
		a[i] /= n
	}
}

func fft(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("sketch: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Rect(1, ang)
		half := size / 2
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wStep
			}
		}
	}
}
