package sketch

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// CountSketch is a random sparse projection R^dim → R^M defined by a hash
// bucket h(i) and a sign s(i) per coordinate (Charikar et al. 2004). It
// satisfies E[SᵀS] = I, which makes sketched inner products unbiased.
type CountSketch struct {
	M    int
	H    []int32
	Sign []float64
}

// NewCountSketch draws a CountSketch for dimension dim into m buckets.
func NewCountSketch(dim, m int, rng *rand.Rand) CountSketch {
	if dim <= 0 || m <= 0 {
		panic(fmt.Sprintf("sketch: invalid CountSketch dims %d→%d", dim, m))
	}
	cs := CountSketch{M: m, H: make([]int32, dim), Sign: make([]float64, dim)}
	for i := range cs.H {
		cs.H[i] = int32(rng.Intn(m))
		if rng.Intn(2) == 0 {
			cs.Sign[i] = 1
		} else {
			cs.Sign[i] = -1
		}
	}
	return cs
}

// ApplyMatrix sketches the rows of a: the result is the M×c matrix S·a,
// where row h(i) accumulates Sign(i)·a[i,:].
func (cs CountSketch) ApplyMatrix(a *mat.Dense) *mat.Dense {
	if len(cs.H) != a.Rows() {
		panic(fmt.Sprintf("sketch: CountSketch over dimension %d applied to %d rows", len(cs.H), a.Rows()))
	}
	out := mat.New(cs.M, a.Cols())
	for i := 0; i < a.Rows(); i++ {
		mat.Axpy(cs.Sign[i], a.Row(i), out.Row(int(cs.H[i])))
	}
	return out
}

// KroneckerSketch computes the TensorSketch of the Kronecker product of the
// given factor matrices: TS(⊗ factors) ∈ R^{m × ∏J_k}, where the combined
// hash is the sum of per-factor hashes mod m and the combined sign is the
// product — evaluated via the FFT convolution identity
// CS_combined(a⊗b) = IFFT(FFT(CS₁a) ⊙ FFT(CS₂b)).
//
// Factors are listed in ascending tensor-mode order and output columns
// enumerate rank combinations with the FIRST listed factor fastest,
// matching the unfolding convention used throughout the repository. m must
// be a power of two (use NextPow2).
func KroneckerSketch(sketches []CountSketch, factors []*mat.Dense, m int) *mat.Dense {
	if len(sketches) != len(factors) {
		panic(fmt.Sprintf("sketch: %d sketches for %d factors", len(sketches), len(factors)))
	}
	if m&(m-1) != 0 {
		panic(fmt.Sprintf("sketch: KroneckerSketch m=%d not a power of two", m))
	}
	// FFT of the CountSketch of every factor column.
	ffts := make([][][]complex128, len(factors))
	cols := 1
	for k, f := range factors {
		if sketches[k].M != m {
			panic(fmt.Sprintf("sketch: sketch %d has M=%d, want %d", k, sketches[k].M, m))
		}
		sk := sketches[k].ApplyMatrix(f) // m×J_k
		ffts[k] = make([][]complex128, f.Cols())
		for j := 0; j < f.Cols(); j++ {
			col := make([]complex128, m)
			for i := 0; i < m; i++ {
				col[i] = complex(sk.At(i, j), 0)
			}
			FFT(col)
			ffts[k][j] = col
		}
		cols *= f.Cols()
	}

	out := mat.New(m, cols)
	combo := make([]int, len(factors))
	buf := make([]complex128, m)
	for c := 0; c < cols; c++ {
		copy(buf, ffts[0][combo[0]])
		for k := 1; k < len(factors); k++ {
			col := ffts[k][combo[k]]
			for i := range buf {
				buf[i] *= col[i]
			}
		}
		IFFT(buf)
		for i := 0; i < m; i++ {
			out.Set(i, c, real(buf[i]))
		}
		// Advance the combination, first factor fastest.
		for k := 0; k < len(factors); k++ {
			combo[k]++
			if combo[k] < factors[k].Cols() {
				break
			}
			combo[k] = 0
		}
	}
	return out
}

// TensorSketches holds the one-pass sketches of a dense tensor used by the
// Tucker-ts/ttmts baselines:
//
//	Z[n] = TS_{k≠n}(X_(n)ᵀ) ∈ R^{m1×I_n} — the mode-n unfolding sketched
//	       along its long dimension, for every mode n;
//	Z2   = TS_all(vec X) ∈ R^{m2}.
type TensorSketches struct {
	Z  []*mat.Dense
	Z2 []float64
	// CS1 and CS2 are the per-mode CountSketches defining the combined
	// hashes (shared across the Z[n], per Malik & Becker's one-pass
	// construction).
	CS1 []CountSketch
	CS2 []CountSketch
	M1  int
	M2  int
}

// SketchTensor computes all unfolding sketches and the vectorization sketch
// in a single pass over the tensor. m1 and m2 must be powers of two.
func SketchTensor(x *tensor.Dense, m1, m2 int, rng *rand.Rand) *TensorSketches {
	order := x.Order()
	shape := x.Shape()
	ts := &TensorSketches{
		Z:   make([]*mat.Dense, order),
		Z2:  make([]float64, m2),
		CS1: make([]CountSketch, order),
		CS2: make([]CountSketch, order),
		M1:  m1,
		M2:  m2,
	}
	for k := 0; k < order; k++ {
		ts.CS1[k] = NewCountSketch(shape[k], m1, rng)
		ts.CS2[k] = NewCountSketch(shape[k], m2, rng)
		ts.Z[k] = mat.New(m1, shape[k])
	}

	idx := make([]int, order)
	// Running combined hash/sign; updated incrementally as the multi-index
	// advances (first index fastest).
	h1 := make([]int, order) // per-mode current hash contribution
	h2 := make([]int, order)
	sumH1, sumH2 := 0, 0
	sign1, sign2 := 1.0, 1.0
	for k := 0; k < order; k++ {
		h1[k] = int(ts.CS1[k].H[0])
		h2[k] = int(ts.CS2[k].H[0])
		sumH1 += h1[k]
		sumH2 += h2[k]
		sign1 *= ts.CS1[k].Sign[0]
		sign2 *= ts.CS2[k].Sign[0]
	}

	for _, v := range x.Data() {
		if v != 0 {
			// Mode-n sketch excludes mode n's own hash and sign.
			for n := 0; n < order; n++ {
				row := (sumH1 - h1[n]) % m1
				s := sign1 * ts.CS1[n].Sign[idx[n]] // divide out = multiply (±1)
				ts.Z[n].Set(row, idx[n], ts.Z[n].At(row, idx[n])+s*v)
			}
			ts.Z2[sumH2%m2] += sign2 * v
		}
		// Advance the multi-index and the running hashes.
		for k := 0; k < order; k++ {
			oldI := idx[k]
			idx[k]++
			if idx[k] < shape[k] {
				sumH1 += int(ts.CS1[k].H[idx[k]]) - h1[k]
				h1[k] = int(ts.CS1[k].H[idx[k]])
				sumH2 += int(ts.CS2[k].H[idx[k]]) - h2[k]
				h2[k] = int(ts.CS2[k].H[idx[k]])
				sign1 *= ts.CS1[k].Sign[oldI] * ts.CS1[k].Sign[idx[k]]
				sign2 *= ts.CS2[k].Sign[oldI] * ts.CS2[k].Sign[idx[k]]
				break
			}
			idx[k] = 0
			sumH1 += int(ts.CS1[k].H[0]) - h1[k]
			h1[k] = int(ts.CS1[k].H[0])
			sumH2 += int(ts.CS2[k].H[0]) - h2[k]
			h2[k] = int(ts.CS2[k].H[0])
			sign1 *= ts.CS1[k].Sign[oldI] * ts.CS1[k].Sign[0]
			sign2 *= ts.CS2[k].Sign[oldI] * ts.CS2[k].Sign[0]
		}
	}
	return ts
}
