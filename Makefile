GO ?= go

.PHONY: build test verify bench overhead

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite, then the
# race detector over EVERY package — the worker pool threads parallelism
# through core, mat, and tensor, so no package is exempt from race checking.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
	$(GO) test -bench 'BenchmarkIterateWorkers' -benchmem ./internal/core/

# overhead measures metrics-enabled vs -disabled cost on the quickstart
# workload (see EXPERIMENTS.md "Measurement methodology"; must stay <2%).
overhead:
	$(GO) test ./internal/core/ -run XXX -bench Quickstart -benchtime 10x -count 3
