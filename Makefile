GO ?= go

.PHONY: build test verify bench overhead

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite, then the
# race detector over the packages with shared mutable state (the global
# kernel counters in internal/metrics used by internal/mat and the
# parallel phases in internal/core).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/mat/... ./internal/metrics/...

bench:
	$(GO) test -bench=. -benchmem

# overhead measures metrics-enabled vs -disabled cost on the quickstart
# workload (see EXPERIMENTS.md "Measurement methodology"; must stay <2%).
overhead:
	$(GO) test ./internal/core/ -run XXX -bench Quickstart -benchtime 10x -count 3
