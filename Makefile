GO ?= go

.PHONY: build test verify bench overhead faults bench-json bench-compare serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite, then the
# race detector over EVERY package — the worker pool threads parallelism
# through core, mat, and tensor, so no package is exempt from race checking —
# and the fault-injection suite under -race, since injected failures exercise
# the drain/containment paths that only misbehave under contention.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) test -race ./internal/core/ -run 'TestFaultSweep|TestKeyedFaultFallbackBitIdentical|TestCancelMidRun' -count 1
	$(GO) test -race ./internal/trace/ ./internal/metrics/ ./internal/pool/ -count 1
	$(GO) test -race ./internal/core/ -run 'TestDecomposeTraceShape|TestTraceBalanced|TestHistogramCounts' -count 1
	$(GO) test -race ./internal/server/ ./cmd/dtuckerd/ -count 1

# serve runs the decomposition daemon on :7171 (override with ADDR=...).
# See README "Serving" for the endpoint walkthrough and drain semantics.
ADDR ?= :7171
serve:
	$(GO) run ./cmd/dtuckerd -addr $(ADDR)

# faults sweeps every registered fault-injection hook point (internal/faults
# sites) in error and panic mode, through both the plain and streaming
# pipelines. The sweep fails if any injected fault escapes as a panic, comes
# back without naming its site, produces non-finite output, or if a
# registered site is missing from the sweep table.
faults:
	$(GO) test ./internal/faults/ ./internal/pool/ ./internal/randsvd/ -count 1
	$(GO) test -race ./internal/core/ -run 'TestFaultSweep' -v -count 1

bench:
	$(GO) test -bench=. -benchmem
	$(GO) test -bench 'BenchmarkIterateWorkers' -benchmem ./internal/core/

# overhead measures metrics-enabled vs -disabled cost on the quickstart
# workload (see EXPERIMENTS.md "Measurement methodology"; must stay <2%).
overhead:
	$(GO) test ./internal/core/ -run XXX -bench Quickstart -benchtime 10x -count 3

# bench-json emits today's machine-readable benchmark trajectory
# (BENCH_<UTC-date>.json, schema in EXPERIMENTS.md "Benchmark trajectories")
# on the standard baseline workload. Commit the file to extend the repo's
# performance record.
bench-json:
	$(GO) run ./cmd/benchreport

# bench-compare re-measures the baseline workload and gates it against the
# most recent committed BENCH_*.json, failing (exit 4) on any metric more
# than 25% worse — wide enough for shared-runner noise, narrow enough to
# catch a real slowdown. Override with BENCH_BASELINE=<file>.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_*.json baseline found; run make bench-json first"; exit 2; }
	$(GO) run ./cmd/benchreport -out .bench-head.json
	$(GO) run ./cmd/benchreport -compare -max-regress 25 $(BENCH_BASELINE) .bench-head.json; \
	  status=$$?; rm -f .bench-head.json; exit $$status
