GO ?= go

.PHONY: build test verify bench overhead faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite, then the
# race detector over EVERY package — the worker pool threads parallelism
# through core, mat, and tensor, so no package is exempt from race checking —
# and the fault-injection suite under -race, since injected failures exercise
# the drain/containment paths that only misbehave under contention.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) test -race ./internal/core/ -run 'TestFaultSweep|TestKeyedFaultFallbackBitIdentical|TestCancelMidRun' -count 1

# faults sweeps every registered fault-injection hook point (internal/faults
# sites) in error and panic mode, through both the plain and streaming
# pipelines. The sweep fails if any injected fault escapes as a panic, comes
# back without naming its site, produces non-finite output, or if a
# registered site is missing from the sweep table.
faults:
	$(GO) test ./internal/faults/ ./internal/pool/ ./internal/randsvd/ -count 1
	$(GO) test -race ./internal/core/ -run 'TestFaultSweep' -v -count 1

bench:
	$(GO) test -bench=. -benchmem
	$(GO) test -bench 'BenchmarkIterateWorkers' -benchmem ./internal/core/

# overhead measures metrics-enabled vs -disabled cost on the quickstart
# workload (see EXPERIMENTS.md "Measurement methodology"; must stay <2%).
overhead:
	$(GO) test ./internal/core/ -run XXX -bench Quickstart -benchtime 10x -count 3
