GO ?= go

.PHONY: build test verify bench overhead faults crashtest bench-json bench-compare serve load load-compare rangebench autotune obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite, then the
# race detector over EVERY package — the worker pool threads parallelism
# through core, mat, and tensor, so no package is exempt from race checking —
# and the fault-injection suite under -race, since injected failures exercise
# the drain/containment paths that only misbehave under contention.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) test -race ./internal/core/ -run 'TestFaultSweep|TestKeyedFaultFallbackBitIdentical|TestCancelMidRun' -count 1
	$(GO) test -race ./internal/trace/ ./internal/metrics/ ./internal/pool/ -count 1
	$(GO) test -race ./internal/core/ -run 'TestDecomposeTraceShape|TestTraceBalanced|TestHistogramCounts' -count 1
	$(GO) test -race ./internal/server/ ./cmd/dtuckerd/ -count 1
	$(GO) test -race ./internal/rangeidx/ -count 1
	$(GO) test -race ./internal/journal/ ./internal/faults/ -count 1
	$(GO) test -race ./internal/kernelsel/ ./internal/mat/ -count 1
	sh scripts/obslint.sh
	$(GO) run ./cmd/dtucker -autotune .autotune-smoke.json -autotune-quick >/dev/null && rm -f .autotune-smoke.json
	$(MAKE) load

# obs is the observability suite under -race: the structured-log schema and
# zero-alloc guarantees, the Prometheus exposition golden/linter pair, the
# end-to-end request-correlation tests, and the loadgen↔event-log smoke —
# plus the handler lint (every response must carry X-Request-ID).
obs:
	sh scripts/obslint.sh
	$(GO) test -race ./internal/obs/ -count 1
	$(GO) test -race ./internal/metrics/ -run 'TestProm|TestLint|TestWritePrometheus' -count 1
	$(GO) test -race ./internal/server/ -run 'TestObs|TestMetricz' -count 1
	$(GO) test -race ./internal/loadgen/ -run 'TestRunCorrelates' -count 1

# autotune calibrates the kernel-selection cost model and matmul block
# sizes on THIS machine, writing the profile to KERNEL_PROFILE (then pass
# it to dtucker/dtuckerd via -kernel-profile). Takes a minute or two: it
# times real SVD and matmul kernels at representative sizes. See README
# "Kernel selection".
KERNEL_PROFILE ?= kernelprofile.json
autotune:
	$(GO) run ./cmd/dtucker -autotune $(KERNEL_PROFILE)

# serve runs the decomposition daemon on :7171 (override with ADDR=...).
# See README "Serving" for the endpoint walkthrough and drain semantics.
ADDR ?= :7171
serve:
	$(GO) run ./cmd/dtuckerd -addr $(ADDR)

# faults sweeps every registered fault-injection hook point (internal/faults
# sites) in error and panic mode, through both the plain and streaming
# pipelines. The sweep fails if any injected fault escapes as a panic, comes
# back without naming its site, produces non-finite output, or if a
# registered site is missing from the sweep table.
faults:
	$(GO) test ./internal/faults/ ./internal/pool/ ./internal/randsvd/ -count 1
	$(GO) test -race ./internal/core/ -run 'TestFaultSweep' -v -count 1

# crashtest is the durability matrix: kill a durable job at EVERY sweep
# boundary (× worker counts) via the journal crash sites, restart over the
# same data dir, and require a bit-identical resumed result — plus every
# corruption-degradation case (torn tails, corrupt snapshot/checkpoint/
# tensor/result) and the subprocess e2e where the daemon genuinely
# os.Exit(7)s mid-write and recovers. All under -race: recovery races
# runners starting, and a torn write is exactly when they'd collide.
crashtest:
	$(GO) test -race ./internal/journal/ -count 1
	$(GO) test -race ./internal/server/ -run 'TestCrash|TestCorrupt|TestRestart|TestDrainInterrupted|TestForeignJournal|TestDurabilityCounters|TestCheckpointEvery' -v -count 1
	$(GO) test -race ./cmd/dtuckerd/ -run 'TestDaemonCrashRecovery' -v -count 1

bench:
	$(GO) test -bench=. -benchmem
	$(GO) test -bench 'BenchmarkIterateWorkers' -benchmem ./internal/core/

# overhead measures metrics-enabled vs -disabled cost on the quickstart
# workload (see EXPERIMENTS.md "Measurement methodology"; must stay <2%).
overhead:
	$(GO) test ./internal/core/ -run XXX -bench Quickstart -benchtime 10x -count 3

# bench-json emits today's machine-readable benchmark trajectory
# (BENCH_<UTC-date>.json, schema in EXPERIMENTS.md "Benchmark trajectories")
# on the standard baseline workload. Commit the file to extend the repo's
# performance record.
bench-json:
	$(GO) run ./cmd/benchreport

# bench-compare re-measures the baseline workload and gates it against the
# most recent committed BENCH_*.json, failing (exit 4) on any metric more
# than 25% worse — wide enough for shared-runner noise, narrow enough to
# catch a real slowdown. Override with BENCH_BASELINE=<file>.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_*.json baseline found; run make bench-json first"; exit 2; }
	$(GO) run ./cmd/benchreport -out .bench-head.json
	$(GO) run ./cmd/benchreport -compare -max-regress 25 $(BENCH_BASELINE) .bench-head.json; \
	  status=$$?; rm -f .bench-head.json; exit $$status

# load is the serving-layer smoke: a short fixed-seed open-loop run of
# cmd/loadgen against an in-process daemon (hermetic, no port, no process
# to manage), writing .load-head.json. verify runs it, so a change that
# breaks the harness or the admission path fails tier-1. Methodology and
# the full flag surface are in docs/OPERATIONS.md.
load:
	$(GO) run ./cmd/loadgen -self -self-queue 16 -self-runners 2 \
	  -duration 5s -qps 10 -seed 1 -tenants prod=3,adhoc=1 \
	  -out .load-head.json

# rangebench measures what the per-stream range index buys on an
# overlapping-range workload: two hermetic runs of the same offered
# schedule — many distinct overlapping windows over a 32-step stream —
# first with the index disabled (exact-range cache only, every distinct
# window re-solves from scratch), then with it enabled (windows stitch
# O(log T) cached node summaries). benchreport -compare gates the indexed
# run against the baseline, so it fails if stitching ever becomes slower
# than direct solves. The committed LOAD_<date>-range*.json pair records
# this before/after (see EXPERIMENTS.md).
RANGEMIX = -duration 8s -qps 6 -seed 7 -arrival uniform -mix range=1 \
  -range-chunks 8 -range-windows 12 -self-range-block 4
rangebench:
	$(GO) run ./cmd/loadgen -self -self-runners 2 -self-range-index=false \
	  $(RANGEMIX) -out .range-base.json
	$(GO) run ./cmd/loadgen -self -self-runners 2 \
	  $(RANGEMIX) -out .range-head.json
	$(GO) run ./cmd/benchreport -compare -max-regress 25 .range-base.json .range-head.json; \
	  status=$$?; rm -f .range-base.json .range-head.json; exit $$status

# load-compare re-measures and gates against the newest committed
# LOAD_*.json. The budget is deliberately wide (schema gate + catastrophic
# regression catch, not a precision benchmark — shared-CPU latency
# quantiles are noisy): goodput may halve and quantiles may double before
# it fails (exit 4). Refresh the baseline by re-running the load recipe
# with -out LOAD_$$(date -u +%F).json and committing the file.
LOAD_BASELINE ?= $(lastword $(sort $(wildcard LOAD_*.json)))
load-compare: load
	@test -n "$(LOAD_BASELINE)" || { echo "no LOAD_*.json baseline found; see docs/OPERATIONS.md"; exit 2; }
	$(GO) run ./cmd/benchreport -compare -max-regress 100 $(LOAD_BASELINE) .load-head.json; \
	  status=$$?; rm -f .load-head.json; exit $$status
