package repro_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/tensor"
)

// startDaemon runs an in-process dtuckerd for the examples; production code
// would point the client at a running daemon instead.
func startDaemon(cfg server.Config) (baseURL string, shutdown func()) {
	srv, err := server.New(cfg)
	if err != nil {
		panic(err)
	}
	hs := httptest.NewServer(srv.Handler())
	return hs.URL, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
		hs.Close()
	}
}

// ExampleClient_Submit shows the asynchronous path: submit a job, poll its
// record until it reaches a terminal state, then fetch the result payload.
func ExampleClient_Submit() {
	url, shutdown := startDaemon(server.Config{Runners: 1})
	defer shutdown()

	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 12, 10, 8)

	cl := repro.NewClient(url)
	cl.Tenant = "analytics" // accounted against this tenant's quota and WFQ share
	ctx := context.Background()

	receipt, err := cl.Submit(ctx, x, repro.Config{Ranks: []int{3, 3, 3}, Seed: 1}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("submitted:", receipt.JobID)

	for {
		st, err := cl.Job(ctx, receipt.JobID)
		if err != nil {
			panic(err)
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			fmt.Println("state:", st.State, "tenant:", st.Tenant)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	dec, err := cl.Result(ctx, receipt.JobID)
	if err != nil {
		panic(err)
	}
	fmt.Println("core shape:", dec.Core.Shape())
	// Output:
	// submitted: j-000001
	// state: done tenant: analytics
	// core shape: [3 3 3]
}

// ExampleClient_Cancel cancels an in-flight job; the decomposition observes
// its context at the next phase or sweep boundary and the record finishes
// with kind "cancelled".
func ExampleClient_Cancel() {
	url, shutdown := startDaemon(server.Config{Runners: 1})
	defer shutdown()

	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 64, 64, 48) // big enough to still be running

	cl := repro.NewClient(url)
	ctx := context.Background()

	receipt, err := cl.Submit(ctx, x, repro.Config{Ranks: []int{8, 8, 8}, Seed: 1}, nil)
	if err != nil {
		panic(err)
	}
	if err := cl.Cancel(ctx, receipt.JobID); err != nil {
		panic(err)
	}

	for {
		st, err := cl.Job(ctx, receipt.JobID)
		if err != nil {
			panic(err)
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			fmt.Println("state:", st.State)
			fmt.Println("kind:", st.Error.Kind)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Output:
	// state: cancelled
	// kind: cancelled
}

// ExampleClient_RangeResult shows the streaming range-query path: open a
// session, append chunks as they arrive, then ask for any time window with
// one call. The daemon composes the answer from its range index when the
// window is long enough to stitch, and answers repeats — even of windows
// first asked before later appends — from its cache, bit-identically.
func ExampleClient_RangeResult() {
	url, shutdown := startDaemon(server.Config{Runners: 1})
	defer shutdown()

	cl := repro.NewClient(url)
	ctx := context.Background()

	sess, err := cl.CreateStream(ctx, repro.Config{Ranks: []int{3, 3, 3}, Seed: 1})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		if _, err := cl.Append(ctx, sess.StreamID, tensor.RandN(rng, 12, 10, 4)); err != nil {
			panic(err)
		}
	}

	dec, err := cl.RangeResult(ctx, sess.StreamID, 2, 9, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("window [2,9) core shape:", dec.Core.Shape())

	// The same window again is answered from the range cache without
	// re-solving; the receipt says so.
	receipt, err := cl.Range(ctx, sess.StreamID, 2, 9, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("repeat cache hit:", receipt.CacheHit)

	// An impossible window fails fast with a typed error.
	_, err = cl.Range(ctx, sess.StreamID, 9, 2, nil)
	var apiErr *repro.APIError
	if errors.As(err, &apiErr) {
		fmt.Println("inverted window:", apiErr.Kind)
	}
	// Output:
	// window [2,9) core shape: [3 3 3]
	// repeat cache hit: true
	// inverted window: invalid_input
}

// ExampleClient_Decompose_backoff shows Decompose retrying 429 load-shed
// rejections under a RetryPolicy. The daemon is wrapped so its first two
// submissions shed the way a saturated queue would; the policy's Sleep and
// Jitter seams make the example deterministic — production code leaves them
// nil and gets a real jittered wait honouring the Retry-After hint.
func ExampleClient_Decompose_backoff() {
	srv, err := server.New(server.Config{Runners: 1})
	if err != nil {
		panic(err)
	}
	inner := srv.Handler()
	var shed atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/decompose" && shed.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"kind":"queue_full","message":"job queue is full"}}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
		hs.Close()
	}()

	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 12, 10, 8)

	cl := repro.NewClient(hs.URL)
	cl.Retry = &repro.RetryPolicy{
		MaxAttempts: 4,
		Jitter:      -1, // disable jitter so the printed waits are fixed
		Sleep: func(ctx context.Context, d time.Duration) error {
			fmt.Println("shed; backing off", d)
			return nil // print instead of sleeping; nil means "waited"
		},
	}

	dec, err := cl.Decompose(context.Background(), x, repro.Config{Ranks: []int{3, 3, 3}, Seed: 1}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("factors:", len(dec.Factors))
	// Output:
	// shed; backing off 1s
	// shed; backing off 1s
	// factors: 3
}
