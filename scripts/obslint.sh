#!/bin/sh
# obslint: grep-based invariants of the request-observability layer.
#
# 1. Server.Handler must wrap the mux in the instrument middleware — it is
#    what stamps X-Request-ID on every response (including 4xx/5xx written
#    before a job record exists) and feeds the flight recorder.
# 2. internal/server must not re-grow a raw expvar.Handler() — it leaks
#    cmdline and the full memstats dump; /metricz serves a curated document.
# 3. No handler may write a response around the instrumented writer:
#    http.Error and raw WriteHeader calls bypass the writeJSON/writeError
#    helpers that keep status capture and error-class tagging correct.
#    WriteHeader is allowed only in server.go (the writeJSON helper),
#    metricz.go (the Prometheus text path), and obsmw.go (the statusWriter
#    passthrough itself).
#
# Exits non-zero with a message on the first violated invariant.
set -eu
cd "$(dirname "$0")/.."

fail() {
	echo "obslint: $1" >&2
	exit 1
}

grep -q 'return s\.instrument(s\.mux)' internal/server/server.go ||
	fail "Server.Handler no longer wraps the mux in s.instrument — responses would lose X-Request-ID"

if grep -rn 'expvar\.Handler()' internal/server/ --include='*.go' | grep -v '_test\.go' | grep -q .; then
	fail "internal/server uses expvar.Handler(), which exposes cmdline and full memstats; serve the curated /metricz instead"
fi

if grep -rn 'http\.Error(' internal/server/ --include='*.go' | grep -v '_test\.go' | grep -q .; then
	fail "internal/server calls http.Error, bypassing writeError (no request-ID header, no error-class capture)"
fi

for f in $(grep -rl 'WriteHeader(' internal/server/ --include='*.go' | grep -v '_test\.go'); do
	case "$f" in
	internal/server/server.go | internal/server/metricz.go | internal/server/obsmw.go) ;;
	*) fail "$f calls WriteHeader directly — route responses through writeJSON/writeError so they stay instrumented" ;;
	esac
done

# 4. The GET range route must be registered on s.mux inside routes(), where
#    the instrument middleware (invariant 1) stamps X-Request-ID on it like
#    every other submission endpoint — a GET handler mounted elsewhere
#    would silently skip request-ID stamping and the flight recorder.
grep -q 'HandleFunc("GET /v1/streams/{id}/range"' internal/server/server.go ||
	fail "GET /v1/streams/{id}/range is not registered on the instrumented mux in routes()"

# 5. The POST range alias is deprecated: it must advertise that with a
#    Deprecation header so clients learn to migrate before it is removed.
grep -q 'Header().Set("Deprecation"' internal/server/stream.go ||
	fail "the POST /range alias no longer sets the Deprecation header"

echo "obslint: ok"
