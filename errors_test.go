package repro_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/tensor"
)

// TestPublicErrorTaxonomy proves the re-exported sentinels are the ones the
// pipeline actually wraps, so downstream errors.Is / errors.As checks work
// through the public surface alone.
func TestPublicErrorTaxonomy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandN(rng, 8, 7, 6)

	t.Run("invalid input", func(t *testing.T) {
		_, err := repro.Decompose(x, repro.Options{Config: repro.Config{Ranks: []int{3, 3}}})
		if !errors.Is(err, repro.ErrInvalidInput) {
			t.Fatalf("err = %v, want ErrInvalidInput", err)
		}
		if err := repro.NewStream(repro.Options{Config: repro.Config{Ranks: []int{3, 3, 3}}}).Append(nil); !errors.Is(err, repro.ErrInvalidInput) {
			t.Fatalf("err = %v, want ErrInvalidInput", err)
		}
	})

	t.Run("non-finite input", func(t *testing.T) {
		bad := tensor.RandN(rng, 8, 7, 6)
		bad.Set(math.NaN(), 0, 0, 0)
		_, err := repro.Decompose(bad, repro.Options{Config: repro.Config{Ranks: []int{3, 3, 3}}})
		if !errors.Is(err, repro.ErrNonFiniteInput) {
			t.Fatalf("err = %v, want ErrNonFiniteInput", err)
		}
	})

	t.Run("non-finite serialized data", func(t *testing.T) {
		bad := repro.NewTensor(2, 2)
		bad.Set(math.Inf(1), 1, 1)
		var buf bytes.Buffer
		if err := bad.Write(&buf); err != nil {
			t.Fatal(err)
		}
		_, err := repro.ReadTensor(&buf)
		if !errors.Is(err, repro.ErrNonFiniteInput) {
			t.Fatalf("err = %v, want ErrNonFiniteInput", err)
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := repro.DecomposeContext(ctx, x, repro.Options{Config: repro.Config{Ranks: []int{3, 3, 3}}})
		var c *repro.CancelledError
		if !errors.As(err, &c) {
			t.Fatalf("err = %v (%T), want *CancelledError", err, err)
		}
		if c.Phase != "approximation" {
			t.Fatalf("interrupted phase %q, want approximation", c.Phase)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v does not satisfy errors.Is(context.Canceled)", err)
		}
		if _, err := repro.ApproximateContext(ctx, x, repro.Options{Config: repro.Config{Ranks: []int{3, 3, 3}}}); !errors.As(err, &c) {
			t.Fatalf("ApproximateContext err = %v, want *CancelledError", err)
		}
		if _, _, err := repro.DecomposeAdaptiveContext(ctx, x, 0.1, 4, repro.Options{}); !errors.As(err, &c) {
			t.Fatalf("DecomposeAdaptiveContext err = %v, want *CancelledError", err)
		}
	})
}
