package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/tensor"
)

// TestParseRetryAfter pins both RFC 9110 forms of the header against a
// fixed clock: delta-seconds, HTTP-date (common behind proxies), past
// dates, negative deltas, and garbage.
func TestParseRetryAfter(t *testing.T) {
	now := func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0}, // negative delta: retry now, not "never"
		{"Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second},
		{"Sat, 08 Aug 2026 11:59:00 GMT", 0},              // past date clamps to zero
		{"Saturday, 08-Aug-26 12:01:00 GMT", time.Minute}, // RFC 850 form
		{"not-a-date", 0},
		{"1.5", 0}, // fractional seconds are not in the grammar
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestRetryPolicyWait pins the backoff arithmetic: Retry-After hints win
// over the exponential schedule, everything is capped at MaxDelay, and the
// whole computation is deterministic through the Rand seam.
func TestRetryPolicyWait(t *testing.T) {
	p := RetryPolicy{Jitter: -1}.withDefaults() // jitter disabled

	if got := p.wait(1, 2*time.Second); got != 2*time.Second {
		t.Errorf("wait(1, hint 2s) = %v, want the hint", got)
	}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
	} {
		if got := p.wait(attempt, 0); got != want {
			t.Errorf("wait(%d, no hint) = %v, want %v", attempt, got, want)
		}
	}
	if got := p.wait(30, 0); got != p.MaxDelay {
		t.Errorf("wait(30, no hint) = %v, want the %v cap", got, p.MaxDelay)
	}
	if got := p.wait(70, 0); got != p.MaxDelay {
		t.Errorf("wait(70, no hint) = %v, want the cap even past shift overflow", got)
	}
	if got := p.wait(1, time.Minute); got != p.MaxDelay {
		t.Errorf("wait(1, hint 1m) = %v, want the hint capped to %v", got, p.MaxDelay)
	}
}

func TestRetryPolicyJitterDeterministic(t *testing.T) {
	p := RetryPolicy{Rand: func() float64 { return 0.5 }}.withDefaults()
	// Default jitter fraction is 0.5: wait' = d·(1 + 0.5·0.5) = 1.25·d.
	if got, want := p.wait(1, 2*time.Second), 2500*time.Millisecond; got != want {
		t.Errorf("jittered wait = %v, want %v", got, want)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != DefaultRetryPolicy.MaxAttempts ||
		p.BaseDelay != DefaultRetryPolicy.BaseDelay ||
		p.MaxDelay != DefaultRetryPolicy.MaxDelay ||
		p.Jitter != DefaultRetryPolicy.Jitter {
		t.Errorf("withDefaults() = %+v, want the DefaultRetryPolicy values %+v", p, DefaultRetryPolicy)
	}
	if p.Sleep == nil || p.Rand == nil {
		t.Fatal("withDefaults() left a nil seam")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("default Sleep under a cancelled context = %v, want context.Canceled", err)
	}
}

// TestIsTransient pins the retry classification: transport errors retry
// unless they are the caller's own context ending; of the typed API errors
// only the gateway statuses a proxy answers during a backend restart do.
func TestIsTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"dial refused", errors.New("dial tcp 127.0.0.1:7171: connect: connection refused"), true},
		{"reset mid-body", io.ErrUnexpectedEOF, true},
		{"caller cancelled", context.Canceled, false},
		{"caller deadline", context.DeadlineExceeded, false},
		{"wrapped cancel", &APIErrorWrap{context.Canceled}, false},
		{"502", &APIError{StatusCode: http.StatusBadGateway}, true},
		{"503", &APIError{StatusCode: http.StatusServiceUnavailable}, true},
		{"504", &APIError{StatusCode: http.StatusGatewayTimeout}, true},
		{"404", &APIError{StatusCode: http.StatusNotFound}, false},
		{"409", &APIError{StatusCode: http.StatusConflict}, false},
		{"429 is the submit loop's concern", &APIError{StatusCode: http.StatusTooManyRequests}, false},
	}
	for _, c := range cases {
		if got := isTransient(c.err); got != c.want {
			t.Errorf("%s: isTransient = %v, want %v", c.name, got, c.want)
		}
	}
}

// APIErrorWrap wraps an error, standing in for a url.Error around a
// context cancellation surfaced by http.Client.Do.
type APIErrorWrap struct{ err error }

func (w *APIErrorWrap) Error() string { return w.err.Error() }
func (w *APIErrorWrap) Unwrap() error { return w.err }

// roundTripperFunc scripts the transport so restart symptoms can be
// injected without a network.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func jsonResponse(status int, v any) *http.Response {
	b, _ := json.Marshal(v)
	return &http.Response{
		StatusCode: status,
		Status:     http.StatusText(status),
		Header:     http.Header{},
		Body:       io.NopCloser(bytes.NewReader(b)),
	}
}

// TestDecomposeRidesThroughRestart scripts a daemon restart into the
// transport: the submit is acknowledged, then polling sees a connection
// refused and a proxy 503 before the job reports done, and the result
// fetch sees one more refused connection before the payload arrives.
// Decompose must absorb all three under its RetryPolicy and return the
// decomposition.
func TestDecomposeRidesThroughRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandN(rng, 6, 5, 4)
	cfg := Config{Ranks: []int{2, 2, 2}, Seed: 3}
	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}
	var dtd bytes.Buffer
	if _, err := want.WriteTo(&dtd); err != nil {
		t.Fatal(err)
	}

	refused := errors.New("dial tcp 127.0.0.1:7171: connect: connection refused")
	polls, fetches := 0, 0
	transport := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/decompose":
			return jsonResponse(http.StatusAccepted, server.SubmitResponse{JobID: "j1", State: "queued"}), nil
		case r.URL.Path == "/v1/jobs/j1":
			polls++
			switch polls {
			case 1:
				return nil, refused // daemon is down
			case 2:
				return jsonResponse(http.StatusServiceUnavailable, nil), nil // proxy while it restarts
			default:
				return jsonResponse(http.StatusOK, server.JobStatus{ID: "j1", State: "done", Recovered: true}), nil
			}
		case r.URL.Path == "/v1/jobs/j1/result":
			fetches++
			if fetches == 1 {
				return nil, refused
			}
			return &http.Response{
				StatusCode: http.StatusOK,
				Header:     http.Header{},
				Body:       io.NopCloser(bytes.NewReader(dtd.Bytes())),
			}, nil
		}
		t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		return nil, errors.New("unexpected request")
	})

	var waits []time.Duration
	cl := NewClient("http://scripted")
	cl.HTTPClient = &http.Client{Transport: transport}
	cl.PollInterval = time.Nanosecond
	cl.Retry = &RetryPolicy{
		Jitter: -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}

	got, err := cl.Decompose(context.Background(), x, cfg, nil)
	if err != nil {
		t.Fatalf("Decompose through a scripted restart: %v", err)
	}
	if got.Fit != want.Fit {
		t.Fatalf("fit %v differs from %v after the retries", got.Fit, want.Fit)
	}
	if polls != 3 || fetches != 2 {
		t.Errorf("polls = %d, fetches = %d; want 3 and 2", polls, fetches)
	}
	// Three transient failures → three backoff waits through the Sleep seam.
	if len(waits) != 3 {
		t.Errorf("backoff waits = %v, want exactly 3", waits)
	}
}

// TestRangeResultRetriesAndThreadsRequestID scripts a shed-then-served
// range interaction: the first GET submission is shed with a Retry-After
// hint, the retry is accepted, polling rides through one refused
// connection, and the payload arrives — all under one request ID, on every
// round-trip, so the daemon's log tells a single story.
func TestRangeResultRetriesAndThreadsRequestID(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.RandN(rng, 6, 5, 4)
	want, err := core.Decompose(x, Config{Ranks: []int{2, 2, 2}, Seed: 3}.Options())
	if err != nil {
		t.Fatal(err)
	}
	var dtd bytes.Buffer
	if _, err := want.WriteTo(&dtd); err != nil {
		t.Fatal(err)
	}

	refused := errors.New("dial tcp 127.0.0.1:7171: connect: connection refused")
	rids := map[string]bool{}
	submits, polls := 0, 0
	transport := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		rids[r.Header.Get(server.HeaderRequestID)] = true
		switch {
		case r.Method == http.MethodGet && r.URL.Path == "/v1/streams/s1/range":
			if r.URL.Query().Get("t0") != "2" || r.URL.Query().Get("t1") != "9" {
				t.Errorf("range query params %q", r.URL.RawQuery)
			}
			submits++
			if submits == 1 {
				resp := jsonResponse(http.StatusTooManyRequests, map[string]any{
					"error": server.WireError{Kind: server.KindQueueFull, Message: "queue is full"},
				})
				resp.Header.Set("Retry-After", "1")
				return resp, nil
			}
			return jsonResponse(http.StatusAccepted, server.SubmitResponse{JobID: "j9", State: "queued"}), nil
		case r.URL.Path == "/v1/jobs/j9":
			polls++
			if polls == 1 {
				return nil, refused
			}
			return jsonResponse(http.StatusOK, server.JobStatus{ID: "j9", State: "done"}), nil
		case r.URL.Path == "/v1/jobs/j9/result":
			return &http.Response{
				StatusCode: http.StatusOK,
				Header:     http.Header{},
				Body:       io.NopCloser(bytes.NewReader(dtd.Bytes())),
			}, nil
		}
		t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		return nil, errors.New("unexpected request")
	})

	var waits []time.Duration
	cl := NewClient("http://scripted")
	cl.HTTPClient = &http.Client{Transport: transport}
	cl.PollInterval = time.Nanosecond
	cl.Retry = &RetryPolicy{
		Jitter: -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}

	got, err := cl.RangeResult(context.Background(), "s1", 2, 9, nil)
	if err != nil {
		t.Fatalf("RangeResult through shed + restart: %v", err)
	}
	if got.Fit != want.Fit {
		t.Fatalf("fit %v differs from %v", got.Fit, want.Fit)
	}
	if submits != 2 || polls != 2 {
		t.Errorf("submits = %d, polls = %d; want 2 and 2", submits, polls)
	}
	// The 429's Retry-After hint (1s) must have been honoured for the first
	// wait; the refused poll adds the backoff wait.
	if len(waits) != 2 || waits[0] != time.Second {
		t.Errorf("waits = %v, want [1s, backoff]", waits)
	}
	delete(rids, "")
	if len(rids) != 1 {
		t.Errorf("request IDs seen across the interaction: %d distinct, want exactly 1", len(rids))
	}
	for rid := range rids {
		if rid == "" {
			t.Error("a round-trip carried no request ID")
		}
	}

	// A typed validation failure is final: no retry, the *APIError surfaces.
	final := NewClient("http://scripted")
	final.HTTPClient = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return jsonResponse(http.StatusBadRequest, map[string]any{
			"error": server.WireError{Kind: server.KindInvalidInput, Message: "range: [9, 2) is not a valid window"},
		}), nil
	})}
	_, err = final.RangeResult(context.Background(), "s1", 9, 2, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Kind != server.KindInvalidInput {
		t.Fatalf("inverted window returned %v, want typed invalid_input", err)
	}
}

// TestDecomposeTransientRetryBounded proves a daemon that never comes back
// exhausts MaxAttempts and surfaces the transport error instead of polling
// forever.
func TestDecomposeTransientRetryBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandN(rng, 5, 4, 3)
	cfg := Config{Ranks: []int{2, 2, 2}, Seed: 3}

	refused := errors.New("dial tcp 127.0.0.1:7171: connect: connection refused")
	polls := 0
	transport := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/decompose" {
			return jsonResponse(http.StatusAccepted, server.SubmitResponse{JobID: "j1", State: "queued"}), nil
		}
		polls++
		return nil, refused
	})

	sleeps := 0
	cl := NewClient("http://scripted")
	cl.HTTPClient = &http.Client{Transport: transport}
	cl.Retry = &RetryPolicy{
		MaxAttempts: 3,
		Jitter:      -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps++
			return nil
		},
	}

	_, err := cl.Decompose(context.Background(), x, cfg, nil)
	if err == nil {
		t.Fatal("Decompose succeeded against a permanently dead daemon")
	}
	if !errors.Is(err, refused) {
		t.Errorf("error %v does not unwrap to the transport failure", err)
	}
	if polls != 3 {
		t.Errorf("polls = %d, want MaxAttempts = 3", polls)
	}
	if sleeps != 2 {
		t.Errorf("sleeps = %d, want MaxAttempts-1 = 2", sleeps)
	}
}
