package repro

import (
	"context"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 forms of the header against a
// fixed clock: delta-seconds, HTTP-date (common behind proxies), past
// dates, negative deltas, and garbage.
func TestParseRetryAfter(t *testing.T) {
	now := func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0}, // negative delta: retry now, not "never"
		{"Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second},
		{"Sat, 08 Aug 2026 11:59:00 GMT", 0}, // past date clamps to zero
		{"Saturday, 08-Aug-26 12:01:00 GMT", time.Minute}, // RFC 850 form
		{"not-a-date", 0},
		{"1.5", 0}, // fractional seconds are not in the grammar
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestRetryPolicyWait pins the backoff arithmetic: Retry-After hints win
// over the exponential schedule, everything is capped at MaxDelay, and the
// whole computation is deterministic through the Rand seam.
func TestRetryPolicyWait(t *testing.T) {
	p := RetryPolicy{Jitter: -1}.withDefaults() // jitter disabled

	if got := p.wait(1, 2*time.Second); got != 2*time.Second {
		t.Errorf("wait(1, hint 2s) = %v, want the hint", got)
	}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
	} {
		if got := p.wait(attempt, 0); got != want {
			t.Errorf("wait(%d, no hint) = %v, want %v", attempt, got, want)
		}
	}
	if got := p.wait(30, 0); got != p.MaxDelay {
		t.Errorf("wait(30, no hint) = %v, want the %v cap", got, p.MaxDelay)
	}
	if got := p.wait(70, 0); got != p.MaxDelay {
		t.Errorf("wait(70, no hint) = %v, want the cap even past shift overflow", got)
	}
	if got := p.wait(1, time.Minute); got != p.MaxDelay {
		t.Errorf("wait(1, hint 1m) = %v, want the hint capped to %v", got, p.MaxDelay)
	}
}

func TestRetryPolicyJitterDeterministic(t *testing.T) {
	p := RetryPolicy{Rand: func() float64 { return 0.5 }}.withDefaults()
	// Default jitter fraction is 0.5: wait' = d·(1 + 0.5·0.5) = 1.25·d.
	if got, want := p.wait(1, 2*time.Second), 2500*time.Millisecond; got != want {
		t.Errorf("jittered wait = %v, want %v", got, want)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != DefaultRetryPolicy.MaxAttempts ||
		p.BaseDelay != DefaultRetryPolicy.BaseDelay ||
		p.MaxDelay != DefaultRetryPolicy.MaxDelay ||
		p.Jitter != DefaultRetryPolicy.Jitter {
		t.Errorf("withDefaults() = %+v, want the DefaultRetryPolicy values %+v", p, DefaultRetryPolicy)
	}
	if p.Sleep == nil || p.Rand == nil {
		t.Fatal("withDefaults() left a nil seam")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("default Sleep under a cancelled context = %v, want context.Canceled", err)
	}
}
