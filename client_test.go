package repro

import (
	"context"
	"testing"
	"time"
)

// TestRetryPolicyWait pins the backoff arithmetic: Retry-After hints win
// over the exponential schedule, everything is capped at MaxDelay, and the
// whole computation is deterministic through the Rand seam.
func TestRetryPolicyWait(t *testing.T) {
	p := RetryPolicy{Jitter: -1}.withDefaults() // jitter disabled

	if got := p.wait(1, 2*time.Second); got != 2*time.Second {
		t.Errorf("wait(1, hint 2s) = %v, want the hint", got)
	}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
	} {
		if got := p.wait(attempt, 0); got != want {
			t.Errorf("wait(%d, no hint) = %v, want %v", attempt, got, want)
		}
	}
	if got := p.wait(30, 0); got != p.MaxDelay {
		t.Errorf("wait(30, no hint) = %v, want the %v cap", got, p.MaxDelay)
	}
	if got := p.wait(70, 0); got != p.MaxDelay {
		t.Errorf("wait(70, no hint) = %v, want the cap even past shift overflow", got)
	}
	if got := p.wait(1, time.Minute); got != p.MaxDelay {
		t.Errorf("wait(1, hint 1m) = %v, want the hint capped to %v", got, p.MaxDelay)
	}
}

func TestRetryPolicyJitterDeterministic(t *testing.T) {
	p := RetryPolicy{Rand: func() float64 { return 0.5 }}.withDefaults()
	// Default jitter fraction is 0.5: wait' = d·(1 + 0.5·0.5) = 1.25·d.
	if got, want := p.wait(1, 2*time.Second), 2500*time.Millisecond; got != want {
		t.Errorf("jittered wait = %v, want %v", got, want)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != DefaultRetryPolicy.MaxAttempts ||
		p.BaseDelay != DefaultRetryPolicy.BaseDelay ||
		p.MaxDelay != DefaultRetryPolicy.MaxDelay ||
		p.Jitter != DefaultRetryPolicy.Jitter {
		t.Errorf("withDefaults() = %+v, want the DefaultRetryPolicy values %+v", p, DefaultRetryPolicy)
	}
	if p.Sleep == nil || p.Rand == nil {
		t.Fatal("withDefaults() left a nil seam")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("default Sleep under a cancelled context = %v, want context.Canceled", err)
	}
}
