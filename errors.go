package repro

import (
	"repro/internal/dterr"
)

// The error taxonomy of the library, re-exported from the internal leaf
// package so downstream errors.Is / errors.As checks work against the exact
// values every layer wraps.
//
// Every exported entry point rejects malformed input with an error wrapping
// ErrInvalidInput and data containing NaN/±Inf with one wrapping
// ErrNonFiniteInput, instead of panicking. A run cancelled through
// Options.Context (or the *Context entry points) returns a *CancelledError
// naming the interrupted phase, which also satisfies
// errors.Is(err, context.Canceled) / context.DeadlineExceeded. A panic
// contained in a worker goroutine or at an entry point surfaces as a
// *PanicError wrapping ErrPanic, carrying the original panic value and
// stack — never a process crash.
var (
	// ErrInvalidInput marks a malformed argument rejected up front:
	// mismatched Ranks length, non-positive ranks, nil tensors, stream
	// chunk shape mismatches, invalid query ranges.
	ErrInvalidInput = dterr.ErrInvalidInput
	// ErrNonFiniteInput marks input data containing NaN or ±Inf, rejected
	// at every boundary that admits raw data (Decompose, Approximate,
	// Stream.Append, ReadTensor/LoadTensor).
	ErrNonFiniteInput = dterr.ErrNonFiniteInput
	// ErrNumericalBreakdown marks a numerical kernel failure (non-finite
	// randomized sketch, zero-norm sketch column, non-converging SVD). The
	// randomized SVD layer recovers from it with a deterministic dense-SVD
	// fallback; an escaping ErrNumericalBreakdown means the fallback failed
	// too.
	ErrNumericalBreakdown = dterr.ErrNumericalBreakdown
	// ErrPanic is wrapped by every contained panic (*PanicError).
	ErrPanic = dterr.ErrPanic
)

// CancelledError reports that a run observed context cancellation at a
// slice, factor, or sweep boundary; Phase names the interrupted phase
// ("approximation", "initialization", "iteration").
type CancelledError = dterr.CancelledError

// PanicError is a panic converted to an error at a containment boundary (a
// worker-pool goroutine or an exported entry point), carrying the panic
// value and the goroutine stack captured at recovery time.
type PanicError = dterr.PanicError
