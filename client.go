package repro

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
)

// Wire types of the dtuckerd serving API, shared with the server so client
// and daemon cannot drift.
type (
	// SubmitResponse acknowledges an accepted or cache-answered job.
	SubmitResponse = server.SubmitResponse
	// JobStatus is the job record served at GET /v1/jobs/{id}.
	JobStatus = server.JobStatus
	// StreamResponse describes a stream session.
	StreamResponse = server.StreamResponse
	// Health is the body of GET /healthz.
	Health = server.Health
)

// APIError is a typed error from the dtuckerd API. Kind mirrors the
// library's error taxonomy (see the server.Kind* constants) so HTTP
// clients can switch on it the way library callers switch on errors.Is;
// RetryAfter is set on 429 rejections.
type APIError struct {
	StatusCode int
	Kind       string
	Message    string
	Phase      string
	RetryAfter time.Duration
	// RequestID is the correlation ID echoed in the X-Request-ID response
	// header; quote it when filing the failure against the daemon's
	// structured log and flight recorder. Set even on 429/503 rejections.
	RequestID string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dtuckerd: %s (%s, HTTP %d)", e.Message, e.Kind, e.StatusCode)
}

// Client talks to a dtuckerd daemon. The zero value is not usable; create
// one with NewClient. Methods are safe for concurrent use.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7171".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the initial result-polling cadence of Decompose;
	// it backs off geometrically to 16× this value. Default 25ms.
	PollInterval time.Duration
	// Tenant, when non-empty, is sent as the X-Tenant header on every
	// request: the daemon charges this tenant's quota and fair-queueing
	// share for the client's jobs. Empty means tenant "default".
	Tenant string
	// Priority, when non-empty, is sent as the X-Priority header
	// ("interactive" or "batch"), overriding the endpoint's default lane.
	Priority string
	// Retry governs Decompose's automatic retry of 429 (queue full /
	// tenant quota) rejections and of transient transport failures while
	// polling an accepted job — connection refused/reset during a daemon
	// restart, or a proxy answering 502/503/504 while it comes back. With a
	// durable daemon (-data-dir) the accepted job survives the restart, so
	// a poll that rides through it completes normally. Nil means
	// DefaultRetryPolicy. Submit never retries — it surfaces errors so
	// callers can implement their own policy.
	Retry *RetryPolicy
}

// RetryPolicy bounds the automatic retry of 429 load-shed rejections.
// Each failed attempt waits the server's Retry-After hint when present,
// otherwise BaseDelay doubled per attempt; the wait is capped at MaxDelay
// and stretched by a random jitter fraction so synchronized clients do not
// re-arrive in lockstep. The context passed to Decompose cuts the whole
// interaction short, including mid-wait.
type RetryPolicy struct {
	// MaxAttempts is the total number of submission attempts (first try
	// included). Values below 1 mean the DefaultRetryPolicy value.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff used when the server sends
	// no Retry-After hint. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps each wait. Default 5s.
	MaxDelay time.Duration
	// Jitter is the fraction of each wait added uniformly at random:
	// wait' = wait · (1 + Jitter·U[0,1)). 0 means the default 0.5;
	// negative disables jitter.
	Jitter float64

	// Sleep and Rand are deterministic-test seams. Sleep defaults to a
	// context-aware timer wait; Rand defaults to a process-wide PRNG
	// returning values in [0, 1).
	Sleep func(ctx context.Context, d time.Duration) error
	Rand  func() float64
}

// DefaultRetryPolicy is the policy Decompose uses when Client.Retry is nil:
// up to 8 attempts, 100ms base delay doubling per attempt, 5s cap, 0.5
// jitter fraction.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 8,
	BaseDelay:   100 * time.Millisecond,
	MaxDelay:    5 * time.Second,
	Jitter:      0.5,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultRetryPolicy.Jitter
	}
	if p.Sleep == nil {
		p.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// wait returns the delay before retry attempt (attempt is 1-based: the
// number of submission attempts already failed), honouring the server's
// Retry-After hint when present.
func (p RetryPolicy) wait(attempt int, retryAfter time.Duration) time.Duration {
	d := retryAfter
	if d <= 0 {
		d = p.BaseDelay << (attempt - 1)
		if d <= 0 { // shift overflow
			d = p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d += time.Duration(p.Jitter * p.Rand() * float64(d))
	}
	return d
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// setIdentity stamps the admission-identity headers on a request.
func (c *Client) setIdentity(req *http.Request) {
	if c.Tenant != "" {
		req.Header.Set(server.HeaderTenant, c.Tenant)
	}
	if c.Priority != "" {
		req.Header.Set(server.HeaderPriority, c.Priority)
	}
}

// SubmitOptions are the per-job knobs of Submit beyond the Config.
type SubmitOptions struct {
	// Timeout bounds the job's execution time once it starts running.
	Timeout time.Duration
	// Trace records a span trace, retrievable from the job record.
	Trace bool
	// RequestID is the correlation ID sent as the X-Request-ID header.
	// Empty means the client generates one, so every submission is
	// correlatable against the daemon's structured log; the ID used is
	// echoed back in SubmitResponse.RequestID.
	RequestID string
}

// do issues one JSON request and decodes a 2xx JSON response into out
// (unless out is nil). Non-2xx responses decode into an *APIError. A
// non-empty reqID travels as the X-Request-ID header, correlating the
// request with the daemon's structured log; empty lets the daemon mint one.
func (c *Client) do(ctx context.Context, method, path, reqID string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if reqID != "" {
		req.Header.Set(server.HeaderRequestID, reqID)
	}
	c.setIdentity(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode, Kind: server.KindInternal}
	var env struct {
		Error *server.WireError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error != nil {
		apiErr.Kind = env.Error.Kind
		apiErr.Message = env.Error.Message
		apiErr.Phase = env.Error.Phase
	} else {
		apiErr.Message = resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		apiErr.RetryAfter = parseRetryAfter(ra, time.Now)
	}
	apiErr.RequestID = resp.Header.Get(server.HeaderRequestID)
	return apiErr
}

// parseRetryAfter parses a Retry-After header value in either RFC 9110
// form: delta-seconds, or an HTTP-date (proxies and load balancers commonly
// rewrite the former into the latter). Negative delays — past dates, or a
// server sending a negative delta — clamp to zero, meaning "retry now";
// unparseable values return zero so the caller falls back to its default
// backoff. The clock is injected for testability.
func parseRetryAfter(v string, now func() time.Time) time.Duration {
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		return max(t.Sub(now()), 0)
	}
	return 0
}

// isTransient reports whether one failed round-trip is worth retrying on
// the assumption the daemon is restarting: any transport-level error that
// is not the caller's own context ending (connection refused while the
// process is down, connection reset when it died mid-response), and the
// gateway statuses 502/503/504 a fronting proxy answers while the backend
// is away. Typed API errors other than those — 404 for a job the daemon
// genuinely does not know, 409, 4xx validation — are final.
func isTransient(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// retryTransient runs op, retrying transient failures (isTransient) under
// the policy's backoff until one attempt succeeds, fails permanently, or
// MaxAttempts attempts are spent. The last error is returned unwrapped so
// callers still see the underlying *APIError or transport error.
func retryTransient[T any](ctx context.Context, policy RetryPolicy, op func() (T, error)) (T, error) {
	var zero T
	for attempt := 1; ; attempt++ {
		v, err := op()
		if err == nil {
			return v, nil
		}
		if !isTransient(err) || attempt >= policy.MaxAttempts {
			return zero, err
		}
		var retryAfter time.Duration
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			retryAfter = apiErr.RetryAfter
		}
		if serr := policy.Sleep(ctx, policy.wait(attempt, retryAfter)); serr != nil {
			return zero, serr
		}
	}
}

// Submit posts one decomposition job and returns its receipt without
// waiting for it to run. A full queue surfaces as an *APIError with
// StatusCode 429 and RetryAfter set; Decompose retries that automatically.
func (c *Client) Submit(ctx context.Context, x *Tensor, cfg Config, opts *SubmitOptions) (*SubmitResponse, error) {
	if x == nil {
		return nil, fmt.Errorf("repro: Submit: nil tensor")
	}
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("repro: serializing tensor: %w", err)
	}
	req := server.DecomposeRequest{
		Config:    cfg,
		TensorB64: base64.StdEncoding.EncodeToString(buf.Bytes()),
	}
	rid := ""
	if opts != nil {
		req.TimeoutMs = opts.Timeout.Milliseconds()
		req.Trace = opts.Trace
		rid = opts.RequestID
	}
	if rid == "" {
		rid = obs.NewRequestID()
	}
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/decompose", rid, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateStream opens a streaming-decomposition session. The config's ranks
// must match the order of the chunks Append will feed it; the temporal
// (last) rank applies to the growing mode.
func (c *Client) CreateStream(ctx context.Context, cfg Config) (*StreamResponse, error) {
	var resp StreamResponse
	if err := c.do(ctx, http.MethodPost, "/v1/streams", "", server.StreamRequest{Config: cfg}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Append compresses one chunk into a stream, synchronously: when Append
// returns, the chunk is part of the stream's compressed state.
func (c *Client) Append(ctx context.Context, streamID string, chunk *Tensor) (*StreamResponse, error) {
	if chunk == nil {
		return nil, fmt.Errorf("repro: Append: nil tensor")
	}
	var buf bytes.Buffer
	if _, err := chunk.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("repro: serializing tensor: %w", err)
	}
	req := server.AppendRequest{TensorB64: base64.StdEncoding.EncodeToString(buf.Bytes())}
	var resp StreamResponse
	if err := c.do(ctx, http.MethodPost, "/v1/streams/"+url.PathEscape(streamID)+"/append", "", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Range submits a time-range query over steps [t0, t1) of a stream via
// GET /v1/streams/{id}/range and returns the job receipt without waiting.
// Invalid windows (t0 ≥ t1, out of bounds) fail fast with an *APIError of
// kind invalid_input; an exact-cache or index hit is answered immediately
// with SubmitResponse.CacheHit set. Tracing follows the stream session's
// own trace flag, so SubmitOptions.Trace is ignored here.
func (c *Client) Range(ctx context.Context, streamID string, t0, t1 int, opts *SubmitOptions) (*SubmitResponse, error) {
	path := fmt.Sprintf("/v1/streams/%s/range?t0=%d&t1=%d", url.PathEscape(streamID), t0, t1)
	rid := ""
	if opts != nil {
		if opts.Timeout > 0 {
			path += fmt.Sprintf("&timeout_ms=%d", opts.Timeout.Milliseconds())
		}
		rid = opts.RequestID
	}
	if rid == "" {
		rid = obs.NewRequestID()
	}
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodGet, path, rid, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RangeResult is the blocking convenience path for range queries,
// mirroring Decompose: submit via Range, retry 429 load-shed rejections
// under the client's RetryPolicy, poll until the job finishes (riding
// through transient transport failures), and fetch the result. One request
// ID covers the whole interaction. The returned decomposition is
// bit-identical to what the daemon's range engine produced for the first
// query of this window — cache hits replay the identical payload.
func (c *Client) RangeResult(ctx context.Context, streamID string, t0, t1 int, opts *SubmitOptions) (*Decomposition, error) {
	policy := DefaultRetryPolicy
	if c.Retry != nil {
		policy = *c.Retry
	}
	policy = policy.withDefaults()

	var o SubmitOptions
	if opts != nil {
		o = *opts
	}
	if o.RequestID == "" {
		o.RequestID = obs.NewRequestID()
	}

	var receipt *SubmitResponse
	for attempt := 1; ; attempt++ {
		var err error
		receipt, err = c.Range(ctx, streamID, t0, t1, &o)
		if err == nil {
			break
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
			return nil, err
		}
		if attempt >= policy.MaxAttempts {
			return nil, err
		}
		if serr := policy.Sleep(ctx, policy.wait(attempt, apiErr.RetryAfter)); serr != nil {
			return nil, serr
		}
	}
	return c.awaitResult(ctx, policy, receipt.JobID, o.RequestID)
}

// Job fetches the current job record.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	return c.job(ctx, id, "")
}

func (c *Client) job(ctx context.Context, id, reqID string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, reqID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cancellation of a queued or running job; the job
// transitions to cancelled at its next phase or sweep boundary.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, "", nil, nil)
}

// Result fetches a finished job's decomposition (the .dtd binary payload,
// decoded and validated). A job that is not done yet returns an *APIError.
func (c *Client) Result(ctx context.Context, id string) (*Decomposition, error) {
	return c.result(ctx, id, "")
}

func (c *Client) result(ctx context.Context, id, reqID string) (*Decomposition, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	if reqID != "" {
		req.Header.Set(server.HeaderRequestID, reqID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return core.ReadDecomposition(resp.Body)
}

// Health fetches /healthz. A draining daemon answers with HTTP 503, which
// still carries the health body; that case returns the body and no error.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, decodeAPIError(resp)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Decompose is the blocking convenience path: submit, retry 429 load-shed
// rejections under the client's RetryPolicy (bounded attempts, Retry-After
// hint honoured, exponential backoff with jitter), poll until the job
// finishes, and fetch the result. When every attempt is shed, the last
// *APIError is returned with its StatusCode still 429 so callers can keep
// distinguishing overload from failure. Transient transport failures while
// polling or fetching the result — the daemon restarting, a proxy's
// 502/503/504 — retry under the same policy, so a poll rides through a
// crash-and-recover of a durable daemon. The returned decomposition is
// bit-identical to running DecomposeContext(ctx, x, cfg.Options())
// in-process — the daemon runs the same deterministic library. ctx bounds
// the whole interaction, including backoff waits.
func (c *Client) Decompose(ctx context.Context, x *Tensor, cfg Config, opts *SubmitOptions) (*Decomposition, error) {
	policy := DefaultRetryPolicy
	if c.Retry != nil {
		policy = *c.Retry
	}
	policy = policy.withDefaults()

	// One request ID covers the whole interaction — submit retries, polls,
	// and the result fetch — so the daemon's log tells a single story even
	// when the first attempts are shed.
	var o SubmitOptions
	if opts != nil {
		o = *opts
	}
	if o.RequestID == "" {
		o.RequestID = obs.NewRequestID()
	}
	rid := o.RequestID

	var receipt *SubmitResponse
	for attempt := 1; ; attempt++ {
		var err error
		receipt, err = c.Submit(ctx, x, cfg, &o)
		if err == nil {
			break
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
			return nil, err
		}
		if attempt >= policy.MaxAttempts {
			return nil, err
		}
		if serr := policy.Sleep(ctx, policy.wait(attempt, apiErr.RetryAfter)); serr != nil {
			return nil, serr
		}
	}

	return c.awaitResult(ctx, policy, receipt.JobID, rid)
}

// awaitResult polls one accepted job to a terminal state and fetches its
// payload, retrying transient transport failures under policy. rid is the
// request ID threaded through every poll and the final fetch.
func (c *Client) awaitResult(ctx context.Context, policy RetryPolicy, jobID, rid string) (*Decomposition, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	maxInterval := 16 * interval
	for {
		st, err := retryTransient(ctx, policy, func() (*JobStatus, error) {
			return c.job(ctx, jobID, rid)
		})
		if err != nil {
			return nil, err
		}
		switch st.State {
		case server.StateDone:
			return retryTransient(ctx, policy, func() (*Decomposition, error) {
				return c.result(ctx, jobID, rid)
			})
		case server.StateFailed, server.StateCancelled:
			e := &APIError{StatusCode: http.StatusConflict, Kind: server.KindInternal, Message: "job " + st.State}
			if st.Error != nil {
				e.Kind = st.Error.Kind
				e.Message = st.Error.Message
				e.Phase = st.Error.Phase
			}
			return nil, e
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if interval < maxInterval {
			interval *= 2
		}
	}
}
