package repro_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// buildLowRank constructs an approximately low-rank tensor through the
// public API only.
func buildLowRank(rng *rand.Rand, shape []int, r int, noise float64) *repro.Tensor {
	ranks := make([]int, len(shape))
	for i := range ranks {
		ranks[i] = r
	}
	x := tensor.RandN(rng, ranks...)
	for n, s := range shape {
		x = x.ModeProduct(mat.RandOrthonormal(s, r, rng), n)
	}
	if noise > 0 {
		e := tensor.RandN(rng, shape...)
		e.ScaleInPlace(noise * x.Norm() / e.Norm())
		x.AddInPlace(e)
	}
	return x
}

func TestPublicDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := buildLowRank(rng, []int{20, 16, 12}, 3, 0.05)
	dec, err := repro.Decompose(x, repro.Options{Config: repro.Config{Ranks: []int{3, 3, 3}, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(x.Shape()); err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(x); rel > 0.1 {
		t.Fatalf("relative error %g", rel)
	}
}

func TestPublicApproximateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := buildLowRank(rng, []int{16, 14, 10}, 3, 0.1)
	ap, err := repro.Approximate(x, repro.Options{Config: repro.Config{Ranks: []int{3, 3, 3}, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ap.StorageFloats() >= x.Len() {
		t.Fatal("approximation not smaller than input")
	}
	dec, err := ap.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fit <= 0 {
		t.Fatalf("fit %g", dec.Fit)
	}
}

func TestPublicTensorConstructionAndIO(t *testing.T) {
	x := repro.NewTensor(3, 4, 2)
	x.Set(5, 1, 2, 1)
	y := repro.TensorFromData(make([]float64, 24), 3, 4, 2)
	if y.Len() != x.Len() {
		t.Fatal("length mismatch")
	}
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualApprox(x, 0) {
		t.Fatal("IO round trip failed")
	}
	path := t.TempDir() + "/x.ten"
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.LoadTensor(path); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := repro.NewStream(repro.Options{Config: repro.Config{Ranks: []int{3, 3, 3}, Seed: 1}})
	for i := 0; i < 3; i++ {
		if err := st.Append(buildLowRank(rng, []int{12, 10, 6}, 3, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := st.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Factors[2].Rows() != 18 {
		t.Fatalf("temporal factor rows %d", dec.Factors[2].Rows())
	}
	sub, err := st.DecomposeRange(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Factors[2].Rows() != 6 {
		t.Fatalf("range temporal factor rows %d", sub.Factors[2].Rows())
	}
}

// Example demonstrates the minimal decompose-and-inspect workflow through
// the public API.
func Example() {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 3, 3, 3) // stand-in for real data

	dec, err := repro.Decompose(x, repro.Options{Config: repro.Config{Ranks: []int{2, 2, 2}, Seed: 1}})
	if err != nil {
		panic(err)
	}
	fmt.Println("core shape:", dec.Core.Shape())
	fmt.Println("factors:", len(dec.Factors))
	// Output:
	// core shape: [2 2 2]
	// factors: 3
}
