// Package repro's root benchmarks regenerate every evaluation artifact of
// the reproduction (see DESIGN.md §4 for the experiment index): one
// testing.B per table/figure, each printing the same rows the paper
// reports. Run with
//
//	go test -bench=. -benchmem          # full evaluation scale
//	go test -bench=. -benchmem -short   # reduced sizes for quick passes
//
// Each benchmark executes the full experiment per iteration; at evaluation
// scale a single iteration exceeds the default benchtime, so every
// experiment runs exactly once.
package repro

import (
	"io"
	"os"
	"testing"

	"repro/internal/bench"
)

// out returns the experiment output writer: rows go to stdout on the first
// iteration so the tables land in bench logs, and are discarded on any
// additional iterations.
func out(i int) io.Writer {
	if i == 0 {
		return os.Stdout
	}
	return io.Discard
}

// BenchmarkE1RunningTime regenerates the running-time comparison across all
// methods and all four dataset stand-ins (the paper's headline figure).
func BenchmarkE1RunningTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE1(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Memory regenerates the space-cost comparison of stored
// representations.
func BenchmarkE2Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE2(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Error regenerates the reconstruction-error comparison.
func BenchmarkE3Error(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE3(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4DataScalability regenerates the time-versus-tensor-size sweep.
func BenchmarkE4DataScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE4(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5RankScalability regenerates the time/error-versus-rank sweep.
func BenchmarkE5RankScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE5(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6PhaseBreakdown regenerates the D-Tucker phase timing and the
// approximation-reuse ablation.
func BenchmarkE6PhaseBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.RunE6(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Noise regenerates the accuracy-under-noise sweep.
func BenchmarkE7Noise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE7(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8SliceRank regenerates the slice-rank sensitivity sweep (the
// approximation-quality ablation).
func BenchmarkE8SliceRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE8(out(i), testing.Short()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExperimentSuiteShort is the integration test that drives the whole
// experiment harness end to end at reduced scale, asserting the headline
// claims' *shapes*: D-Tucker must be at least as accurate as the
// approximate baselines and must store less than the raw tensor.
func TestExperimentSuiteShort(t *testing.T) {
	if testing.Short() {
		t.Skip("suite integration test skipped in -short (it is itself the short suite)")
	}
	results, err := bench.RunE1(io.Discard, true)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]bench.Result{}
	for _, r := range results {
		byKey[r.Dataset+"/"+r.Method] = r
	}
	for _, ds := range []string{"video", "stock", "music", "climate"} {
		d, ok := byKey[ds+"/"+bench.DTucker]
		if !ok {
			t.Fatalf("missing d-tucker result for %s", ds)
		}
		a, ok := byKey[ds+"/"+bench.TuckerALS]
		if !ok {
			t.Fatalf("missing tucker-als result for %s", ds)
		}
		// Accuracy: comparable to Tucker-ALS (within 2 percentage points).
		if d.RelErr > a.RelErr+0.02 {
			t.Errorf("%s: d-tucker error %.4f vs tucker-als %.4f", ds, d.RelErr, a.RelErr)
		}
		// Space: compressed slices strictly smaller than the raw tensor.
		if d.StoredFloats >= a.StoredFloats {
			t.Errorf("%s: d-tucker stored %d ≥ input %d", ds, d.StoredFloats, a.StoredFloats)
		}
		// MACH at default sampling must be less accurate than D-Tucker.
		if m, ok := byKey[ds+"/"+bench.MACH]; ok && m.RelErr < d.RelErr-0.02 {
			t.Errorf("%s: MACH error %.4f unexpectedly beats d-tucker %.4f", ds, m.RelErr, d.RelErr)
		}
	}
}
